//! The standard problem catalogue shipped with every netsolve-rs server —
//! the analogue of the LAPACK/ITPACK/FFTPACK/QUADPACK problem set the
//! original NetSolve servers advertised.
//!
//! The catalogue is defined *in PDL source* (not just programmatically) so
//! the description-language path is exercised end-to-end: servers parse
//! this text at startup exactly as they would parse a user's problem file.

use netsolve_core::error::Result;
use netsolve_core::problem::ProblemSpec;

use crate::parser::parse;

/// PDL source of the standard catalogue.
///
/// Complexity constants are flop-count models used by the agent's
/// completion-time predictor:
/// * LU solve: `(2/3)n^3`; QR least squares: `2n^3`; Cholesky: `(1/3)n^3`;
/// * tridiagonal: `8n`; GEMM: `2n^3`;
/// * iterative sparse solvers: per-iteration cost ~ `c·n`, times a nominal
///   iteration count folded into `a` (the predictor only needs relative
///   magnitudes to rank servers);
/// * FFT: `5·n·log2(n)` approximated as a power law `a·n^b` with `b = 1.15`
///   over the experiment's size range.
pub const STANDARD_PDL: &str = r#"
# ------------------------------------------------------------------
# Dense linear algebra (LAPACK-style)
# ------------------------------------------------------------------

@PROBLEM dgesv
@DESCRIPTION "Solve a dense linear system A x = b by LU factorization with partial pivoting"
@INPUT a : matrix "coefficient matrix (n x n)"
@INPUT b : vector "right-hand side (n)"
@OUTPUT x : vector "solution vector (n)"
@COMPLEXITY 0.6667 3
@MAJOR a
@END

@PROBLEM dgels
@DESCRIPTION "Solve an overdetermined least-squares problem min ||A x - b|| by Householder QR"
@INPUT a : matrix "coefficient matrix (m x n, m >= n)"
@INPUT b : vector "right-hand side (m)"
@OUTPUT x : vector "least-squares solution (n)"
@COMPLEXITY 2 3
@MAJOR a
@END

@PROBLEM dposv
@DESCRIPTION "Solve a symmetric positive-definite system A x = b by Cholesky factorization"
@INPUT a : matrix "SPD coefficient matrix (n x n)"
@INPUT b : vector "right-hand side (n)"
@OUTPUT x : vector "solution vector (n)"
@COMPLEXITY 0.3333 3
@MAJOR a
@END

@PROBLEM dgtsv
@DESCRIPTION "Solve a tridiagonal system by the Thomas algorithm"
@INPUT dl : vector "sub-diagonal (n-1)"
@INPUT d : vector "diagonal (n)"
@INPUT du : vector "super-diagonal (n-1)"
@INPUT b : vector "right-hand side (n)"
@OUTPUT x : vector "solution vector (n)"
@COMPLEXITY 8 1
@MAJOR d
@END

@PROBLEM dgemm
@DESCRIPTION "Dense matrix-matrix product C = A B (cache-blocked, multithreaded)"
@INPUT a : matrix "left factor (m x k)"
@INPUT b : matrix "right factor (k x n)"
@OUTPUT c : matrix "product (m x n)"
@COMPLEXITY 2 3
@MAJOR a
@END

@PROBLEM dgetri
@DESCRIPTION "Invert a dense matrix by LU factorization"
@INPUT a : matrix "matrix to invert (n x n)"
@OUTPUT ainv : matrix "inverse (n x n)"
@COMPLEXITY 2 3
@MAJOR a
@END

@PROBLEM eig_power
@DESCRIPTION "Dominant eigenvalue and eigenvector by power iteration"
@INPUT a : matrix "square matrix (n x n)"
@INPUT tol : double "convergence tolerance"
@INPUT maxit : int "maximum iterations"
@OUTPUT lambda : double "dominant eigenvalue"
@OUTPUT v : vector "dominant eigenvector (n)"
@COMPLEXITY 40 2
@MAJOR a
@END

# ------------------------------------------------------------------
# Sparse iterative solvers (ITPACK-style)
# ------------------------------------------------------------------

@PROBLEM cg
@DESCRIPTION "Conjugate gradient on a symmetric positive-definite sparse system"
@INPUT a : sparse "SPD sparse matrix (n x n)"
@INPUT b : vector "right-hand side (n)"
@INPUT tol : double "residual tolerance"
@INPUT maxit : int "maximum iterations"
@OUTPUT x : vector "solution vector (n)"
@OUTPUT iters : int "iterations used"
@COMPLEXITY 600 1
@MAJOR a
@END

@PROBLEM jacobi
@DESCRIPTION "Jacobi iteration on a diagonally dominant sparse system"
@INPUT a : sparse "sparse matrix (n x n)"
@INPUT b : vector "right-hand side (n)"
@INPUT tol : double "residual tolerance"
@INPUT maxit : int "maximum iterations"
@OUTPUT x : vector "solution vector (n)"
@OUTPUT iters : int "iterations used"
@COMPLEXITY 800 1
@MAJOR a
@END

@PROBLEM sor
@DESCRIPTION "Successive over-relaxation on a sparse system"
@INPUT a : sparse "sparse matrix (n x n)"
@INPUT b : vector "right-hand side (n)"
@INPUT omega : double "relaxation factor in (0, 2)"
@INPUT tol : double "residual tolerance"
@INPUT maxit : int "maximum iterations"
@OUTPUT x : vector "solution vector (n)"
@OUTPUT iters : int "iterations used"
@COMPLEXITY 700 1
@MAJOR a
@END

@PROBLEM spmv
@DESCRIPTION "Sparse matrix-vector product y = A x"
@INPUT a : sparse "sparse matrix (m x n)"
@INPUT x : vector "input vector (n)"
@OUTPUT y : vector "result vector (m)"
@COMPLEXITY 10 1
@MAJOR a
@END

# ------------------------------------------------------------------
# Signal processing and approximation (FFTPACK / general)
# ------------------------------------------------------------------

@PROBLEM fft
@DESCRIPTION "Radix-2 complex FFT; input length must be a power of two"
@INPUT x_re : vector "real parts (n, power of two)"
@INPUT x_im : vector "imaginary parts (n)"
@OUTPUT y_re : vector "transformed real parts (n)"
@OUTPUT y_im : vector "transformed imaginary parts (n)"
@COMPLEXITY 5 1.15
@MAJOR x_re
@END

@PROBLEM ifft
@DESCRIPTION "Inverse radix-2 complex FFT"
@INPUT x_re : vector "real parts (n, power of two)"
@INPUT x_im : vector "imaginary parts (n)"
@OUTPUT y_re : vector "real parts of inverse transform (n)"
@OUTPUT y_im : vector "imaginary parts of inverse transform (n)"
@COMPLEXITY 5 1.15
@MAJOR x_re
@END

@PROBLEM conv
@DESCRIPTION "Linear convolution of two signals via zero-padded FFTs"
@INPUT x : vector "first signal (n)"
@INPUT h : vector "second signal / kernel (m)"
@OUTPUT y : vector "convolution (n + m - 1)"
@COMPLEXITY 40 1.15
@MAJOR x
@END

@PROBLEM polyfit
@DESCRIPTION "Least-squares polynomial fit of given degree through (x, y) samples"
@INPUT x : vector "sample abscissae (m)"
@INPUT y : vector "sample ordinates (m)"
@INPUT degree : int "polynomial degree (< m)"
@OUTPUT coeffs : vector "coefficients, constant term first (degree+1)"
@COMPLEXITY 30 2
@MAJOR x
@END

# ------------------------------------------------------------------
# Quadrature (QUADPACK-style) and utility kernels
# ------------------------------------------------------------------

@PROBLEM quad
@DESCRIPTION "Adaptive Simpson quadrature of a named integrand over [a, b]"
@INPUT fname : string "integrand name (sin, runge, gauss, poly3, osc)"
@INPUT a : double "lower limit"
@INPUT b : double "upper limit"
@INPUT tol : double "absolute tolerance"
@OUTPUT integral : double "integral estimate"
@OUTPUT evals : int "function evaluations used"
@COMPLEXITY 1000 0
@MAJOR fname
@END

@PROBLEM quad_mc
@DESCRIPTION "Seeded Monte Carlo quadrature of a named integrand over [a, b]"
@INPUT fname : string "integrand name (sin, runge, gauss, poly3, osc)"
@INPUT a : double "lower limit"
@INPUT b : double "upper limit"
@INPUT samples : int "number of uniform samples"
@INPUT seed : int "RNG seed (0 = fresh server entropy, nonzero = reproducible)"
@OUTPUT integral : double "integral estimate"
@OUTPUT stderr : double "standard error of the estimate"
@COMPLEXITY 80 1
@MAJOR samples
@END

@PROBLEM ode_rk4
@DESCRIPTION "Integrate a named ODE system with classical RK4 from t0 to t1"
@INPUT system : string "system name (decay, oscillator, logistic, vanderpol, lotka)"
@INPUT y0 : vector "initial state (system dimension)"
@INPUT t0 : double "start time"
@INPUT t1 : double "end time"
@INPUT steps : int "number of RK4 steps"
@OUTPUT y1 : vector "final state"
@COMPLEXITY 60 1
@MAJOR steps
@END

@PROBLEM vsort
@DESCRIPTION "Sort a vector ascending"
@INPUT x : vector "values to sort (n)"
@OUTPUT sorted : vector "sorted values (n)"
@COMPLEXITY 20 1
@MAJOR x
@END

@PROBLEM ddot
@DESCRIPTION "Dot product of two vectors"
@INPUT x : vector "first vector (n)"
@INPUT y : vector "second vector (n)"
@OUTPUT dot : double "x . y"
@COMPLEXITY 2 1
@MAJOR x
@END

@PROBLEM dnrm2
@DESCRIPTION "Euclidean norm of a vector"
@INPUT x : vector "input vector (n)"
@OUTPUT norm : double "||x||_2"
@COMPLEXITY 2 1
@MAJOR x
@END
"#;

/// Parse the standard catalogue. Always succeeds for the shipped source;
/// returns `Result` so callers treat it like any other PDL input.
pub fn standard_catalogue() -> Result<Vec<ProblemSpec>> {
    parse(STANDARD_PDL)
}

/// Names in the standard catalogue, for quick membership checks.
pub fn standard_names() -> Vec<String> {
    standard_catalogue()
        .expect("shipped catalogue parses")
        .into_iter()
        .map(|p| p.name)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsolve_core::data::ObjectKind;

    #[test]
    fn catalogue_parses_and_validates() {
        let specs = standard_catalogue().unwrap();
        assert!(specs.len() >= 21, "expected a rich catalogue, got {}", specs.len());
        for spec in &specs {
            spec.validate().unwrap();
        }
    }

    #[test]
    fn expected_problems_present() {
        let names = standard_names();
        for expected in [
            "dgesv", "dgels", "dposv", "dgtsv", "dgemm", "dgetri", "eig_power", "cg", "jacobi",
            "sor", "spmv", "fft", "ifft", "conv", "polyfit", "quad", "quad_mc", "ode_rk4",
            "vsort", "ddot", "dnrm2",
        ] {
            assert!(names.iter().any(|n| n == expected), "missing {expected}");
        }
    }

    #[test]
    fn dgesv_signature_is_canonical() {
        let specs = standard_catalogue().unwrap();
        let dgesv = specs.iter().find(|p| p.name == "dgesv").unwrap();
        assert_eq!(dgesv.inputs.len(), 2);
        assert_eq!(dgesv.inputs[0].kind, ObjectKind::Matrix);
        assert_eq!(dgesv.inputs[1].kind, ObjectKind::Vector);
        assert_eq!(dgesv.outputs.len(), 1);
        assert_eq!(dgesv.major_input, 0);
        assert_eq!(dgesv.complexity.b, 3.0);
    }

    #[test]
    fn cubic_problems_cost_more_than_linear() {
        let specs = standard_catalogue().unwrap();
        let dgesv = specs.iter().find(|p| p.name == "dgesv").unwrap();
        let dgtsv = specs.iter().find(|p| p.name == "dgtsv").unwrap();
        assert!(dgesv.complexity.flops(1000) > dgtsv.complexity.flops(1000) * 100.0);
    }

    #[test]
    fn catalogue_roundtrips_through_render() {
        let specs = standard_catalogue().unwrap();
        for spec in &specs {
            let rendered = crate::parser::render(spec);
            let back = crate::parser::parse_one(&rendered).unwrap();
            assert_eq!(&back, spec);
        }
    }
}
