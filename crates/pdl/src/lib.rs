//! # netsolve-pdl
//!
//! The NetSolve problem description language (PDL).
//!
//! NetSolve servers advertise their repertoire through small description
//! files: each problem declares a mnemonic, a human description, typed
//! inputs and outputs, and an `a·n^b` complexity model for the agent's
//! completion-time predictor. This crate provides the full language
//! pipeline —
//!
//! * [`lexer`] — tokenizer with line tracking, comments and string escapes;
//! * [`parser`] — recursive-descent parser producing validated
//!   [`netsolve_core::ProblemSpec`]s, plus [`parser::render`] which turns a
//!   spec back into canonical PDL;
//! * [`catalogue`] — the standard problem set (dense LAPACK-style solvers,
//!   ITPACK-style sparse iterative methods, FFT, quadrature, utility
//!   kernels) *shipped as PDL source* so the language path is exercised for
//!   real;
//! * [`registry`] — the name → spec index used by servers and agents.

#![warn(missing_docs)]

pub mod catalogue;
pub mod lexer;
pub mod parser;
pub mod registry;

pub use catalogue::{standard_catalogue, standard_names, STANDARD_PDL};
pub use parser::{parse, parse_one, render};
pub use registry::ProblemRegistry;

#[cfg(test)]
mod proptests {
    use netsolve_core::data::ObjectKind;
    use netsolve_core::problem::{Complexity, ObjectSpec, ProblemSpec};
    use proptest::prelude::*;

    fn arb_kind() -> impl Strategy<Value = ObjectKind> {
        prop_oneof![
            Just(ObjectKind::IntScalar),
            Just(ObjectKind::DoubleScalar),
            Just(ObjectKind::Vector),
            Just(ObjectKind::Matrix),
            Just(ObjectKind::SparseMatrix),
            Just(ObjectKind::Text),
        ]
    }

    prop_compose! {
        fn arb_objspec(prefix: &'static str)(
            idx in 0usize..1000,
            kind in arb_kind(),
            desc in "[ !#-~]{0,40}", // printable ASCII minus '"'
        ) -> ObjectSpec {
            ObjectSpec::new(&format!("{prefix}{idx}"), kind, &desc)
        }
    }

    prop_compose! {
        fn arb_spec()(
            name in "[a-z][a-z0-9_]{0,15}",
            desc in "[ !#-~]{1,60}",
            raw_inputs in prop::collection::vec(arb_objspec("in"), 1..5),
            raw_outputs in prop::collection::vec(arb_objspec("out"), 0..4),
            a in 0.001f64..1000.0,
            b in 0.0f64..4.0,
            major_seed in any::<prop::sample::Index>(),
        ) -> ProblemSpec {
            // Dedup argument names (duplicates would fail validation).
            let mut inputs = raw_inputs;
            inputs.sort_by(|x, y| x.name.cmp(&y.name));
            inputs.dedup_by(|x, y| x.name == y.name);
            let mut outputs = raw_outputs;
            outputs.sort_by(|x, y| x.name.cmp(&y.name));
            outputs.dedup_by(|x, y| x.name == y.name);
            let major_input = major_seed.index(inputs.len());
            ProblemSpec {
                name,
                description: desc,
                inputs,
                outputs,
                complexity: Complexity::new(a, b).unwrap(),
                major_input,
            }
        }
    }

    proptest! {
        #[test]
        fn render_parse_roundtrip(spec in arb_spec()) {
            prop_assume!(spec.validate().is_ok());
            let rendered = crate::render(&spec);
            let back = crate::parse_one(&rendered).unwrap();
            prop_assert_eq!(back, spec);
        }

        #[test]
        fn lexer_never_panics(src in "\\PC{0,300}") {
            let _ = crate::lexer::lex(&src);
        }

        #[test]
        fn parser_never_panics(src in "\\PC{0,300}") {
            let _ = crate::parse(&src);
        }

        #[test]
        fn parser_never_panics_on_directive_soup(
            words in prop::collection::vec("(@[A-Z]{1,10}|[a-z]{1,8}|\"[a-z ]{0,10}\"|[0-9]{1,3}|:)", 0..40)
        ) {
            let src = words.join(" ");
            let _ = crate::parse(&src);
        }
    }
}
