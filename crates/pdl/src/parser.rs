//! Recursive-descent parser turning PDL tokens into validated
//! [`ProblemSpec`]s.
//!
//! A source file may contain any number of `@PROBLEM ... @END` blocks.
//! Within a block the directives may appear in any order except that
//! `@PROBLEM` opens and `@END` closes; required directives are
//! `@DESCRIPTION`, at least one `@INPUT`, and `@COMPLEXITY`. `@MAJOR`
//! defaults to the first input; `@OUTPUT`s may be absent for
//! side-effect-only problems (none exist in the standard catalogue, but the
//! language allows it).

use netsolve_core::data::ObjectKind;
use netsolve_core::error::{NetSolveError, Result};
use netsolve_core::problem::{Complexity, ObjectSpec, ProblemSpec};

use crate::lexer::{lex, Spanned, Token};

/// Parse PDL source into problem specs, validating each.
pub fn parse(source: &str) -> Result<Vec<ProblemSpec>> {
    let tokens = lex(source)?;
    Parser { tokens: &tokens, pos: 0 }.parse_file()
}

/// Parse source expected to contain exactly one problem.
pub fn parse_one(source: &str) -> Result<ProblemSpec> {
    let mut all = parse(source)?;
    match all.len() {
        1 => Ok(all.pop().unwrap()),
        n => Err(NetSolveError::Description(format!(
            "expected exactly one problem, found {n}"
        ))),
    }
}

struct Parser<'a> {
    tokens: &'a [Spanned],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<&'a Spanned> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<&'a Spanned> {
        let t = self.tokens.get(self.pos);
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn skip_newlines(&mut self) {
        while matches!(self.peek().map(|s| &s.token), Some(Token::Newline)) {
            self.pos += 1;
        }
    }

    fn line(&self) -> usize {
        self.peek().map(|s| s.line).unwrap_or(0)
    }

    fn expect_ident(&mut self, what: &str) -> Result<String> {
        match self.next() {
            Some(Spanned { token: Token::Ident(s), .. }) => Ok(s.clone()),
            Some(Spanned { token, line }) => Err(err(
                *line,
                &format!("expected {what}, found {token:?}"),
            )),
            None => Err(err(0, &format!("expected {what}, found end of input"))),
        }
    }

    fn expect_number(&mut self, what: &str) -> Result<f64> {
        match self.next() {
            Some(Spanned { token: Token::Number(v), .. }) => Ok(*v),
            Some(Spanned { token, line }) => Err(err(
                *line,
                &format!("expected {what}, found {token:?}"),
            )),
            None => Err(err(0, &format!("expected {what}, found end of input"))),
        }
    }

    fn expect_colon(&mut self) -> Result<()> {
        match self.next() {
            Some(Spanned { token: Token::Colon, .. }) => Ok(()),
            Some(Spanned { token, line }) => {
                Err(err(*line, &format!("expected ':', found {token:?}")))
            }
            None => Err(err(0, "expected ':', found end of input")),
        }
    }

    fn expect_newline(&mut self) -> Result<()> {
        match self.next() {
            Some(Spanned { token: Token::Newline, .. }) | None => Ok(()),
            Some(Spanned { token, line }) => Err(err(
                *line,
                &format!("unexpected trailing {token:?} on directive line"),
            )),
        }
    }

    /// Optional trailing description string before the newline.
    fn optional_string(&mut self) -> Option<String> {
        if let Some(Spanned { token: Token::Str(s), .. }) = self.peek() {
            let s = s.clone();
            self.pos += 1;
            Some(s)
        } else {
            None
        }
    }

    fn parse_file(&mut self) -> Result<Vec<ProblemSpec>> {
        let mut problems = Vec::new();
        loop {
            self.skip_newlines();
            if self.peek().is_none() {
                break;
            }
            problems.push(self.parse_problem()?);
        }
        // Reject duplicate names within one file.
        let mut names: Vec<&str> = problems.iter().map(|p| p.name.as_str()).collect();
        names.sort_unstable();
        if let Some(w) = names.windows(2).find(|w| w[0] == w[1]) {
            return Err(NetSolveError::Description(format!(
                "duplicate problem '{}' in file",
                w[0]
            )));
        }
        Ok(problems)
    }

    fn parse_problem(&mut self) -> Result<ProblemSpec> {
        let open_line = self.line();
        match self.next() {
            Some(Spanned { token: Token::Directive(d), .. }) if d == "PROBLEM" => {}
            Some(Spanned { token, line }) => {
                return Err(err(
                    *line,
                    &format!("expected @PROBLEM, found {token:?}"),
                ))
            }
            None => return Err(err(open_line, "expected @PROBLEM")),
        }
        let name = self.expect_ident("problem name")?;
        self.expect_newline()?;

        let mut description: Option<String> = None;
        let mut inputs: Vec<ObjectSpec> = Vec::new();
        let mut outputs: Vec<ObjectSpec> = Vec::new();
        let mut complexity: Option<Complexity> = None;
        let mut major: Option<String> = None;
        let mut closed = false;

        while let Some(spanned) = self.next() {
            let line = spanned.line;
            match &spanned.token {
                Token::Newline => continue,
                Token::Directive(d) => match d.as_str() {
                    "END" => {
                        self.expect_newline()?;
                        closed = true;
                        break;
                    }
                    "DESCRIPTION" => {
                        let text = match self.next() {
                            Some(Spanned { token: Token::Str(s), .. }) => s.clone(),
                            _ => return Err(err(line, "@DESCRIPTION needs a quoted string")),
                        };
                        if description.replace(text).is_some() {
                            return Err(err(line, "duplicate @DESCRIPTION"));
                        }
                        self.expect_newline()?;
                    }
                    "INPUT" | "OUTPUT" => {
                        let arg_name = self.expect_ident("argument name")?;
                        self.expect_colon()?;
                        let type_name = self.expect_ident("type name")?;
                        let kind = ObjectKind::from_name(&type_name)
                            .map_err(|e| err(line, e.detail()))?;
                        let desc = self.optional_string().unwrap_or_default();
                        self.expect_newline()?;
                        let spec = ObjectSpec { name: arg_name, kind, description: desc };
                        if d == "INPUT" {
                            inputs.push(spec);
                        } else {
                            outputs.push(spec);
                        }
                    }
                    "COMPLEXITY" => {
                        let a = self.expect_number("complexity coefficient a")?;
                        let b = self.expect_number("complexity exponent b")?;
                        let c = Complexity::new(a, b).map_err(|e| err(line, e.detail()))?;
                        if complexity.replace(c).is_some() {
                            return Err(err(line, "duplicate @COMPLEXITY"));
                        }
                        self.expect_newline()?;
                    }
                    "MAJOR" => {
                        let m = self.expect_ident("major argument name")?;
                        if major.replace(m).is_some() {
                            return Err(err(line, "duplicate @MAJOR"));
                        }
                        self.expect_newline()?;
                    }
                    other => {
                        return Err(err(line, &format!("unknown directive @{other}")))
                    }
                },
                token => {
                    return Err(err(line, &format!("expected a directive, found {token:?}")))
                }
            }
        }

        if !closed {
            return Err(err(open_line, &format!("problem '{name}' missing @END")));
        }
        let description = description
            .ok_or_else(|| err(open_line, &format!("problem '{name}' missing @DESCRIPTION")))?;
        let complexity = complexity
            .ok_or_else(|| err(open_line, &format!("problem '{name}' missing @COMPLEXITY")))?;
        if inputs.is_empty() {
            return Err(err(open_line, &format!("problem '{name}' has no @INPUT")));
        }
        let major_input = match major {
            None => 0,
            Some(m) => inputs
                .iter()
                .position(|i| i.name == m)
                .ok_or_else(|| {
                    err(
                        open_line,
                        &format!("problem '{name}': @MAJOR '{m}' is not an input"),
                    )
                })?,
        };

        let spec = ProblemSpec {
            name,
            description,
            inputs,
            outputs,
            complexity,
            major_input,
        };
        spec.validate()?;
        Ok(spec)
    }
}

fn err(line: usize, msg: &str) -> NetSolveError {
    NetSolveError::Description(format!("line {line}: {msg}"))
}

/// Render a [`ProblemSpec`] back to canonical PDL source. `parse(render(p))`
/// returns `p` — tested as a property in the crate tests.
pub fn render(spec: &ProblemSpec) -> String {
    let mut s = String::new();
    s.push_str(&format!("@PROBLEM {}\n", spec.name));
    s.push_str(&format!(
        "@DESCRIPTION \"{}\"\n",
        escape(&spec.description)
    ));
    for i in &spec.inputs {
        s.push_str(&format!(
            "@INPUT {} : {} \"{}\"\n",
            i.name,
            i.kind.name(),
            escape(&i.description)
        ));
    }
    for o in &spec.outputs {
        s.push_str(&format!(
            "@OUTPUT {} : {} \"{}\"\n",
            o.name,
            o.kind.name(),
            escape(&o.description)
        ));
    }
    s.push_str(&format!(
        "@COMPLEXITY {} {}\n",
        spec.complexity.a, spec.complexity.b
    ));
    s.push_str(&format!("@MAJOR {}\n", spec.inputs[spec.major_input].name));
    s.push_str("@END\n");
    s
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    const DGESV: &str = r#"
@PROBLEM dgesv
@DESCRIPTION "Solve a dense linear system A x = b by LU factorization"
@INPUT a : matrix "coefficient matrix"
@INPUT b : vector "right-hand side"
@OUTPUT x : vector "solution vector"
@COMPLEXITY 0.6667 3
@MAJOR a
@END
"#;

    #[test]
    fn parses_complete_problem() {
        let spec = parse_one(DGESV).unwrap();
        assert_eq!(spec.name, "dgesv");
        assert_eq!(spec.inputs.len(), 2);
        assert_eq!(spec.outputs.len(), 1);
        assert_eq!(spec.inputs[0].kind, ObjectKind::Matrix);
        assert_eq!(spec.major_input, 0);
        assert!((spec.complexity.a - 0.6667).abs() < 1e-12);
        assert_eq!(spec.complexity.b, 3.0);
        assert_eq!(spec.inputs[1].description, "right-hand side");
    }

    #[test]
    fn major_defaults_to_first_input() {
        let src = r#"
@PROBLEM p
@DESCRIPTION "d"
@INPUT v : vector
@COMPLEXITY 1 1
@END
"#;
        let spec = parse_one(src).unwrap();
        assert_eq!(spec.major_input, 0);
        assert!(spec.outputs.is_empty());
        assert_eq!(spec.inputs[0].description, "");
    }

    #[test]
    fn multiple_problems_in_one_file() {
        let src = format!("{DGESV}\n@PROBLEM other\n@DESCRIPTION \"x\"\n@INPUT n : int\n@COMPLEXITY 5 1\n@END\n");
        let specs = parse(&src).unwrap();
        assert_eq!(specs.len(), 2);
        assert_eq!(specs[1].name, "other");
    }

    #[test]
    fn duplicate_problem_names_rejected() {
        let src = format!("{DGESV}{DGESV}");
        let e = parse(&src).unwrap_err();
        assert!(e.to_string().contains("duplicate problem"));
    }

    #[test]
    fn missing_required_directives_rejected() {
        assert!(parse("@PROBLEM p\n@DESCRIPTION \"d\"\n@INPUT v : vector\n@END").is_err(), "no complexity");
        assert!(parse("@PROBLEM p\n@INPUT v : vector\n@COMPLEXITY 1 1\n@END").is_err(), "no description");
        assert!(parse("@PROBLEM p\n@DESCRIPTION \"d\"\n@COMPLEXITY 1 1\n@END").is_err(), "no inputs");
        assert!(parse("@PROBLEM p\n@DESCRIPTION \"d\"\n@INPUT v : vector\n@COMPLEXITY 1 1\n").is_err(), "no end");
    }

    #[test]
    fn duplicate_directives_rejected() {
        let src = "@PROBLEM p\n@DESCRIPTION \"a\"\n@DESCRIPTION \"b\"\n@INPUT v : vector\n@COMPLEXITY 1 1\n@END";
        assert!(parse(src).is_err());
        let src = "@PROBLEM p\n@DESCRIPTION \"a\"\n@INPUT v : vector\n@COMPLEXITY 1 1\n@COMPLEXITY 2 2\n@END";
        assert!(parse(src).is_err());
    }

    #[test]
    fn bad_major_rejected() {
        let src = "@PROBLEM p\n@DESCRIPTION \"d\"\n@INPUT v : vector\n@COMPLEXITY 1 1\n@MAJOR zz\n@END";
        let e = parse(src).unwrap_err();
        assert!(e.to_string().contains("not an input"));
    }

    #[test]
    fn unknown_type_and_directive_rejected() {
        let src = "@PROBLEM p\n@DESCRIPTION \"d\"\n@INPUT v : tensor\n@COMPLEXITY 1 1\n@END";
        assert!(parse(src).is_err());
        let src = "@PROBLEM p\n@WEIRD x\n@END";
        assert!(parse(src).is_err());
    }

    #[test]
    fn error_messages_carry_line_numbers() {
        let src = "@PROBLEM p\n@DESCRIPTION \"d\"\n@INPUT v : tensor\n@COMPLEXITY 1 1\n@END";
        let e = parse(src).unwrap_err();
        assert!(e.to_string().contains("line 3"), "{e}");
    }

    #[test]
    fn parse_one_rejects_multi() {
        let src = format!("{DGESV}\n@PROBLEM q\n@DESCRIPTION \"x\"\n@INPUT n : int\n@COMPLEXITY 1 1\n@END\n");
        assert!(parse_one(&src).is_err());
        assert!(parse_one("").is_err());
    }

    #[test]
    fn render_parse_roundtrip() {
        let spec = parse_one(DGESV).unwrap();
        let rendered = render(&spec);
        let back = parse_one(&rendered).unwrap();
        assert_eq!(back, spec);
    }

    #[test]
    fn render_escapes_special_chars() {
        let mut spec = parse_one(DGESV).unwrap();
        spec.description = "has \"quotes\" and \\slashes\\".into();
        let back = parse_one(&render(&spec)).unwrap();
        assert_eq!(back.description, spec.description);
    }

    #[test]
    fn trailing_junk_on_line_rejected() {
        let src = "@PROBLEM p q\n@DESCRIPTION \"d\"\n@INPUT v : vector\n@COMPLEXITY 1 1\n@END";
        assert!(parse(src).is_err());
    }
}
