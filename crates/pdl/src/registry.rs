//! Problem registry: the name → specification index kept by both servers
//! (what can I solve?) and agents (what does the network offer?).

use std::collections::HashMap;

use netsolve_core::error::{NetSolveError, Result};
use netsolve_core::problem::ProblemSpec;

use crate::catalogue::standard_catalogue;
use crate::parser::parse;

/// An indexed, validated collection of problem specifications.
#[derive(Debug, Clone, Default)]
pub struct ProblemRegistry {
    by_name: HashMap<String, ProblemSpec>,
}

impl ProblemRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registry pre-loaded with the standard catalogue.
    pub fn with_standard_catalogue() -> Self {
        let mut reg = Self::new();
        for spec in standard_catalogue().expect("shipped catalogue parses") {
            reg.register(spec).expect("shipped catalogue is conflict-free");
        }
        reg
    }

    /// Register one validated spec. Rejects duplicates — a server must not
    /// silently shadow an existing problem with a different signature.
    pub fn register(&mut self, spec: ProblemSpec) -> Result<()> {
        spec.validate()?;
        if self.by_name.contains_key(&spec.name) {
            return Err(NetSolveError::Registration(format!(
                "problem '{}' already registered",
                spec.name
            )));
        }
        self.by_name.insert(spec.name.clone(), spec);
        Ok(())
    }

    /// Parse PDL source and register every problem in it. Either all
    /// problems register or none do (the registry is untouched on error).
    pub fn register_source(&mut self, source: &str) -> Result<usize> {
        let specs = parse(source)?;
        for spec in &specs {
            if self.by_name.contains_key(&spec.name) {
                return Err(NetSolveError::Registration(format!(
                    "problem '{}' already registered",
                    spec.name
                )));
            }
        }
        let count = specs.len();
        for spec in specs {
            self.by_name.insert(spec.name.clone(), spec);
        }
        Ok(count)
    }

    /// Look up a problem by mnemonic.
    pub fn get(&self, name: &str) -> Option<&ProblemSpec> {
        self.by_name.get(name)
    }

    /// Look up or fail with `ProblemNotFound`.
    pub fn require(&self, name: &str) -> Result<&ProblemSpec> {
        self.get(name)
            .ok_or_else(|| NetSolveError::ProblemNotFound(name.to_string()))
    }

    /// True if the problem is registered.
    pub fn contains(&self, name: &str) -> bool {
        self.by_name.contains_key(name)
    }

    /// Number of registered problems.
    pub fn len(&self) -> usize {
        self.by_name.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.by_name.is_empty()
    }

    /// All problems, sorted by name (stable listing for `netsolve list`).
    pub fn list(&self) -> Vec<&ProblemSpec> {
        let mut all: Vec<&ProblemSpec> = self.by_name.values().collect();
        all.sort_by(|a, b| a.name.cmp(&b.name));
        all
    }

    /// All problem names, sorted.
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.by_name.keys().cloned().collect();
        names.sort();
        names
    }

    /// Remove a problem; returns the removed spec if it existed.
    pub fn unregister(&mut self, name: &str) -> Option<ProblemSpec> {
        self.by_name.remove(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsolve_core::data::ObjectKind;
    use netsolve_core::problem::{Complexity, ObjectSpec};

    fn toy(name: &str) -> ProblemSpec {
        ProblemSpec {
            name: name.into(),
            description: "toy".into(),
            inputs: vec![ObjectSpec::new("x", ObjectKind::Vector, "")],
            outputs: vec![ObjectSpec::new("y", ObjectKind::Vector, "")],
            complexity: Complexity::new(1.0, 1.0).unwrap(),
            major_input: 0,
        }
    }

    #[test]
    fn register_and_lookup() {
        let mut reg = ProblemRegistry::new();
        assert!(reg.is_empty());
        reg.register(toy("p1")).unwrap();
        assert!(reg.contains("p1"));
        assert_eq!(reg.len(), 1);
        assert_eq!(reg.get("p1").unwrap().name, "p1");
        assert!(reg.require("p1").is_ok());
        assert!(matches!(
            reg.require("nope"),
            Err(NetSolveError::ProblemNotFound(_))
        ));
    }

    #[test]
    fn duplicate_registration_rejected() {
        let mut reg = ProblemRegistry::new();
        reg.register(toy("p")).unwrap();
        assert!(reg.register(toy("p")).is_err());
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn invalid_spec_rejected() {
        let mut reg = ProblemRegistry::new();
        let mut bad = toy("ok");
        bad.major_input = 7;
        assert!(reg.register(bad).is_err());
        assert!(reg.is_empty());
    }

    #[test]
    fn standard_catalogue_loads() {
        let reg = ProblemRegistry::with_standard_catalogue();
        assert!(reg.len() >= 16);
        assert!(reg.contains("dgesv"));
        assert!(reg.contains("fft"));
    }

    #[test]
    fn register_source_is_atomic() {
        let mut reg = ProblemRegistry::new();
        reg.register(toy("dupe")).unwrap();
        let src = "\
@PROBLEM fresh\n@DESCRIPTION \"d\"\n@INPUT v : vector\n@COMPLEXITY 1 1\n@END\n\
@PROBLEM dupe\n@DESCRIPTION \"d\"\n@INPUT v : vector\n@COMPLEXITY 1 1\n@END\n";
        assert!(reg.register_source(src).is_err());
        // 'fresh' must not have been half-registered
        assert!(!reg.contains("fresh"));
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn register_source_counts() {
        let mut reg = ProblemRegistry::new();
        let n = reg
            .register_source(crate::catalogue::STANDARD_PDL)
            .unwrap();
        assert_eq!(n, reg.len());
    }

    #[test]
    fn listing_is_sorted() {
        let mut reg = ProblemRegistry::new();
        reg.register(toy("zz")).unwrap();
        reg.register(toy("aa")).unwrap();
        reg.register(toy("mm")).unwrap();
        let names = reg.names();
        assert_eq!(names, vec!["aa", "mm", "zz"]);
        let listed: Vec<&str> = reg.list().iter().map(|p| p.name.as_str()).collect();
        assert_eq!(listed, vec!["aa", "mm", "zz"]);
    }

    #[test]
    fn unregister_removes() {
        let mut reg = ProblemRegistry::new();
        reg.register(toy("p")).unwrap();
        assert!(reg.unregister("p").is_some());
        assert!(reg.unregister("p").is_none());
        assert!(reg.is_empty());
    }
}
