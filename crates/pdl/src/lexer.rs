//! Lexer for the NetSolve problem description language.
//!
//! The PDL is the small interface-description language NetSolve servers use
//! to advertise problems. A description looks like:
//!
//! ```text
//! @PROBLEM dgesv
//! @DESCRIPTION "Solve a dense linear system A x = b by LU factorization"
//! @INPUT a : matrix "coefficient matrix"
//! @INPUT b : vector "right-hand side"
//! @OUTPUT x : vector "solution vector"
//! @COMPLEXITY 0.6667 3      # flops ~ (2/3) n^3
//! @MAJOR a
//! @END
//! ```
//!
//! Tokens carry line numbers so parse errors point at the offending line.

use netsolve_core::error::{NetSolveError, Result};

/// One lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// `@WORD` directive, stored upper-case without the `@`.
    Directive(String),
    /// Bare identifier (`dgesv`, `matrix`, ...).
    Ident(String),
    /// Numeric literal.
    Number(f64),
    /// Double-quoted string (quotes stripped, `\"` and `\\` unescaped).
    Str(String),
    /// `:` separator.
    Colon,
    /// End of line — the PDL is line-oriented, so this is significant.
    Newline,
}

/// Token plus its 1-based source line.
#[derive(Debug, Clone, PartialEq)]
pub struct Spanned {
    /// The token.
    pub token: Token,
    /// 1-based line number.
    pub line: usize,
}

/// Tokenize PDL source. Comments run from `#` to end of line. Blank lines
/// produce no tokens (consecutive newlines are collapsed).
pub fn lex(source: &str) -> Result<Vec<Spanned>> {
    let mut out: Vec<Spanned> = Vec::new();
    for (idx, line) in source.lines().enumerate() {
        let line_no = idx + 1;
        let mut chars = line.char_indices().peekable();
        let start_len = out.len();
        while let Some(&(pos, ch)) = chars.peek() {
            match ch {
                // Comment runs to end of line; '#' inside a quoted string is
                // handled by the string arm below, not here.
                '#' => break,
                c if c.is_whitespace() => {
                    chars.next();
                }
                ':' => {
                    chars.next();
                    out.push(Spanned { token: Token::Colon, line: line_no });
                }
                '@' => {
                    chars.next();
                    let word: String = take_while(&mut chars, |c| {
                        c.is_ascii_alphanumeric() || c == '_'
                    });
                    if word.is_empty() {
                        return Err(err(line_no, "bare '@' without directive name"));
                    }
                    out.push(Spanned {
                        token: Token::Directive(word.to_ascii_uppercase()),
                        line: line_no,
                    });
                }
                '"' => {
                    chars.next();
                    let mut s = String::new();
                    let mut closed = false;
                    while let Some((_, c)) = chars.next() {
                        match c {
                            '"' => {
                                closed = true;
                                break;
                            }
                            '\\' => match chars.next() {
                                Some((_, 'n')) => s.push('\n'),
                                Some((_, '"')) => s.push('"'),
                                Some((_, '\\')) => s.push('\\'),
                                Some((_, other)) => {
                                    return Err(err(
                                        line_no,
                                        &format!("unknown escape '\\{other}'"),
                                    ))
                                }
                                None => break,
                            },
                            other => s.push(other),
                        }
                    }
                    if !closed {
                        return Err(err(line_no, "unterminated string literal"));
                    }
                    out.push(Spanned { token: Token::Str(s), line: line_no });
                }
                c if c.is_ascii_digit() || c == '-' || c == '+' || c == '.' => {
                    let text: String = take_while(&mut chars, |c| {
                        c.is_ascii_digit()
                            || c == '.'
                            || c == '-'
                            || c == '+'
                            || c == 'e'
                            || c == 'E'
                    });
                    let value: f64 = text.parse().map_err(|_| {
                        err(line_no, &format!("bad numeric literal '{text}'"))
                    })?;
                    out.push(Spanned { token: Token::Number(value), line: line_no });
                }
                c if c.is_ascii_alphabetic() || c == '_' => {
                    let word: String = take_while(&mut chars, |c| {
                        c.is_ascii_alphanumeric() || c == '_'
                    });
                    out.push(Spanned { token: Token::Ident(word), line: line_no });
                }
                other => {
                    let _ = pos;
                    return Err(err(line_no, &format!("unexpected character '{other}'")));
                }
            }
        }
        if out.len() > start_len {
            out.push(Spanned { token: Token::Newline, line: line_no });
        }
    }
    Ok(out)
}

fn take_while(
    chars: &mut std::iter::Peekable<std::str::CharIndices<'_>>,
    pred: impl Fn(char) -> bool,
) -> String {
    let mut s = String::new();
    while let Some(&(_, c)) = chars.peek() {
        if pred(c) {
            s.push(c);
            chars.next();
        } else {
            break;
        }
    }
    s
}

fn err(line: usize, msg: &str) -> NetSolveError {
    NetSolveError::Description(format!("line {line}: {msg}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tokens(src: &str) -> Vec<Token> {
        lex(src).unwrap().into_iter().map(|s| s.token).collect()
    }

    #[test]
    fn lexes_directive_line() {
        assert_eq!(
            tokens("@PROBLEM dgesv"),
            vec![
                Token::Directive("PROBLEM".into()),
                Token::Ident("dgesv".into()),
                Token::Newline
            ]
        );
    }

    #[test]
    fn directives_uppercased() {
        assert_eq!(
            tokens("@problem x")[0],
            Token::Directive("PROBLEM".into())
        );
    }

    #[test]
    fn lexes_typed_argument() {
        assert_eq!(
            tokens(r#"@INPUT a : matrix "coefficient matrix""#),
            vec![
                Token::Directive("INPUT".into()),
                Token::Ident("a".into()),
                Token::Colon,
                Token::Ident("matrix".into()),
                Token::Str("coefficient matrix".into()),
                Token::Newline
            ]
        );
    }

    #[test]
    fn lexes_numbers_including_scientific() {
        assert_eq!(
            tokens("@COMPLEXITY 0.6667 3"),
            vec![
                Token::Directive("COMPLEXITY".into()),
                Token::Number(0.6667),
                Token::Number(3.0),
                Token::Newline
            ]
        );
        assert_eq!(tokens("@COMPLEXITY 1e-3 2.5")[1], Token::Number(1e-3));
        assert_eq!(tokens("@X -4")[1], Token::Number(-4.0));
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let src = "\n# full comment line\n@END # trailing comment\n\n";
        assert_eq!(
            tokens(src),
            vec![Token::Directive("END".into()), Token::Newline]
        );
    }

    #[test]
    fn hash_inside_string_is_not_a_comment() {
        assert_eq!(
            tokens(r##"@D "item #3 of 7" # but this is a comment"##),
            vec![
                Token::Directive("D".into()),
                Token::Str("item #3 of 7".into()),
                Token::Newline
            ]
        );
    }

    #[test]
    fn string_escapes() {
        assert_eq!(
            tokens(r#"@D "a \"quoted\" \\ name""#)[1],
            Token::Str(r#"a "quoted" \ name"#.into())
        );
    }

    #[test]
    fn line_numbers_attached() {
        let spanned = lex("@PROBLEM p\n\n@END").unwrap();
        assert_eq!(spanned[0].line, 1);
        assert_eq!(spanned.last().unwrap().line, 3);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = lex("@PROBLEM ok\n@BAD \"unterminated").unwrap_err();
        assert!(e.to_string().contains("line 2"));
        assert!(lex("@ ").is_err());
        assert!(lex("&&&").is_err());
        assert!(lex("@X 1.2.3.4").is_err());
        assert!(lex(r#"@X "bad \q escape""#).is_err());
    }
}
