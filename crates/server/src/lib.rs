//! # netsolve-server
//!
//! The NetSolve computational server: advertises a problem catalogue
//! (parsed from PDL), executes requests against the `netsolve-solvers`
//! substrate, and reports workload to its agent on the lazy
//! threshold/interval policy.
//!
//! * [`core`] — transport-free request validation and execution, including
//!   the synthetic execution mode that emulates a machine of a chosen
//!   speed (the substitute for the paper's heterogeneous testbed);
//! * [`cache`] — the content-addressed solve-result cache with in-flight
//!   request coalescing (LRU under a byte budget, CRC at insert and at
//!   serve);
//! * [`daemon`] — the live daemon: registration, request service loop,
//!   workload reporter.

#![warn(missing_docs)]

pub mod cache;
pub mod core;
pub mod daemon;

pub use crate::core::{Execution, ExecutionMode, ServerCore};
pub use cache::{solve_key, SolveCache};
pub use daemon::{ServerConfig, ServerDaemon};
