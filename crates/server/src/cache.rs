//! Content-addressed solve-result cache with in-flight coalescing.
//!
//! Scientific workloads repeat: the same matrix and right-hand side
//! arrive from thousands of clients. The cache keys each request by a
//! 128-bit content hash of its *canonical encoding* — the problem
//! mnemonic followed by the XDR-marshaled input objects, exactly the
//! bytes the wire would carry — so the key discriminates on solver and
//! operand shape (kind tags and dimensions are part of the encoding),
//! never on payload bytes alone. Hashing reuses the tracer's splitmix64
//! mixing step over 8-byte words, run as two independently-seeded lanes
//! for a 128-bit key.
//!
//! Three outcomes per probe:
//!
//! * **hit** — a cached reply exists; its stored bytes are CRC-checked
//!   *at serve time* and decoded. A mismatch (memory corruption, bug)
//!   drops the entry and falls through to a miss: a corrupted reply can
//!   never leave the server.
//! * **leader** — no entry, no in-flight solve: the caller runs the
//!   solve and publishes the outcome through its [`LeaderToken`].
//! * **join** — an identical request is already solving: the caller
//!   blocks on the in-flight slot and shares the one reply (or its
//!   error) instead of queueing duplicate work.
//!
//! Entries store the XDR-encoded outputs plus a CRC-32 computed at
//! insert, and are evicted LRU under a byte budget. Errors are never
//! cached — a failed solve propagates to every joined waiter and the
//! next arrival re-runs the problem.

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

use netsolve_core::data::DataObject;
use netsolve_core::error::{NetSolveError, Result};
use netsolve_obs::{Counter, Gauge, MetricsRegistry};
use netsolve_xdr::{crc32, from_bytes, to_bytes, Encoder};
use parking_lot::Mutex;
// The workspace's parking_lot shim exposes no Condvar, but its MutexGuard
// *is* `std::sync::MutexGuard`, so std's Condvar pairs with it directly.
use std::sync::Condvar;

/// Fixed bookkeeping cost charged per entry on top of its payload bytes
/// (key, CRC, sequence number, map/queue slots).
const ENTRY_OVERHEAD: usize = 64;

/// `splitmix64` mixing step — the same whitening the tracer and the
/// client's request-id lanes use.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// 128-bit content hash: two splitmix64 lanes with distinct seeds walked
/// over the bytes in 8-byte words, with the length folded in last so a
/// zero-padded final word cannot alias a shorter input.
fn content_hash(bytes: &[u8]) -> u128 {
    let mut lo = 0x243f_6a88_85a3_08d3u64;
    let mut hi = 0x1319_8a2e_0370_7344u64;
    for chunk in bytes.chunks(8) {
        let mut word = [0u8; 8];
        word[..chunk.len()].copy_from_slice(chunk);
        let w = u64::from_le_bytes(word);
        lo = splitmix64(lo ^ w);
        hi = splitmix64(hi ^ w.rotate_left(32));
    }
    let len = bytes.len() as u64;
    lo = splitmix64(lo ^ len);
    hi = splitmix64(hi ^ len.wrapping_mul(0x9e37_79b9_7f4a_7c15));
    ((hi as u128) << 64) | lo as u128
}

/// The cache key of one request: problem mnemonic + canonical input
/// encoding. Public so tests can assert keying properties directly.
pub fn solve_key(problem: &str, inputs: &[DataObject]) -> u128 {
    let hint: u64 = inputs.iter().map(|o| o.wire_bytes() + 16).sum();
    let mut e = Encoder::with_capacity(hint as usize + problem.len() + 8);
    e.put_string(problem);
    netsolve_xdr::encode_objects(&mut e, inputs);
    content_hash(&e.into_bytes())
}

/// Problems whose outputs are *not* a pure function of their inputs.
///
/// `quad_mc` with seed 0 draws fresh server-side entropy, so two
/// bit-identical submissions must yield independent estimates — serving a
/// cached reply (or coalescing concurrent submissions onto one solve)
/// would silently collapse a Monte Carlo ensemble onto a single sample.
/// These problems bypass the cache entirely; the bypass is counted under
/// `server.cache_bypass_nondet`.
const NONDETERMINISTIC_PROBLEMS: &[&str] = &["quad_mc"];

/// Whether `problem`'s outputs are a pure function of its inputs (and
/// its replies therefore safe to cache and coalesce).
pub fn is_deterministic(problem: &str) -> bool {
    !NONDETERMINISTIC_PROBLEMS.contains(&problem)
}

/// One cached reply: the marshaled outputs, the original solve's compute
/// seconds, and the CRC-32 stamped over the bytes at insert time.
struct Entry {
    bytes: Arc<Vec<u8>>,
    compute_secs: f64,
    crc: u32,
    /// Last-use sequence number; stale queue slots are skipped when it
    /// disagrees (amortized-O(1) LRU without a linked list).
    seq: u64,
}

impl Entry {
    fn cost(&self) -> usize {
        self.bytes.len() + ENTRY_OVERHEAD
    }
}

struct Store {
    entries: HashMap<u128, Entry>,
    /// Usage order, oldest first: `(key, seq)` pairs; a pair whose seq no
    /// longer matches its entry is a stale re-use marker and is skipped.
    order: VecDeque<(u128, u64)>,
    total_bytes: usize,
    next_seq: u64,
}

/// The leader's published outcome: the shared encoded reply bytes with
/// the compute seconds and insert CRC, or the error's `(code, detail)` —
/// errors are propagated to waiters, never cached.
type SlotOutcome = std::result::Result<(Arc<Vec<u8>>, f64, u32), (u32, String)>;

/// What an in-flight solve eventually publishes to its joined waiters.
enum SlotState {
    Running,
    Done(SlotOutcome),
}

struct Slot {
    state: Mutex<SlotState>,
    cond: Condvar,
}

/// Outcome of [`SolveCache::probe`].
pub enum Probe {
    /// Cached reply, already CRC-verified and decoded.
    Hit {
        /// The decoded output objects.
        outputs: Vec<DataObject>,
        /// The original solve's compute seconds.
        compute_secs: f64,
    },
    /// No reply and no in-flight solve: the caller must solve and
    /// publish through the token.
    Leader(LeaderToken),
    /// An identical solve is running; wait on it.
    Join(Waiter),
}

/// Obligation to publish a solve outcome. If dropped without publishing
/// (a panic on the solve path), waiters receive an internal error rather
/// than hanging.
pub struct LeaderToken {
    cache: Arc<Shared>,
    key: u128,
    published: bool,
}

impl LeaderToken {
    /// Publish a successful solve: encode + CRC the outputs, insert into
    /// the cache (unless the entry alone exceeds the byte budget), and
    /// wake every joined waiter with the shared reply.
    pub fn complete_ok(mut self, outputs: &[DataObject], compute_secs: f64) {
        self.published = true;
        self.cache.publish_ok(self.key, outputs, compute_secs);
    }

    /// Publish a failed solve: every joined waiter receives the error;
    /// nothing is cached, so the next identical request re-runs.
    pub fn complete_err(mut self, err: &NetSolveError) {
        self.published = true;
        self.cache.publish_err(self.key, err.code(), err.detail().to_string());
    }
}

impl Drop for LeaderToken {
    fn drop(&mut self) {
        if !self.published {
            self.cache.publish_err(
                self.key,
                NetSolveError::Internal(String::new()).code(),
                "coalesced solve abandoned by its leader".into(),
            );
        }
    }
}

/// A handle onto an in-flight solve; blocks until the leader publishes.
pub struct Waiter {
    cache: Arc<Shared>,
    slot: Arc<Slot>,
}

impl Waiter {
    /// Block until the coalesced solve completes, then return the shared
    /// reply (serve-CRC-checked and decoded) or the propagated error.
    pub fn wait(self) -> Result<(Vec<DataObject>, f64)> {
        let mut state = self.slot.state.lock();
        while matches!(*state, SlotState::Running) {
            state = self
                .slot
                .cond
                .wait(state)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
        }
        match &*state {
            SlotState::Running => unreachable!("loop exits only when done"),
            SlotState::Done(Ok((bytes, compute_secs, crc))) => {
                self.cache.serve_checked(bytes, *crc).map(|outputs| (outputs, *compute_secs))
            }
            SlotState::Done(Err((code, detail))) => {
                Err(NetSolveError::from_code(*code, detail.clone()))
            }
        }
    }
}

struct Instruments {
    hits: Arc<Counter>,
    misses: Arc<Counter>,
    coalesced: Arc<Counter>,
    inserts: Arc<Counter>,
    evictions: Arc<Counter>,
    insert_crcs: Arc<Counter>,
    serve_crcs: Arc<Counter>,
    corrupt_dropped: Arc<Counter>,
    uncacheable: Arc<Counter>,
    bypass_nondet: Arc<Counter>,
    bytes_gauge: Arc<Gauge>,
    entries_gauge: Arc<Gauge>,
}

struct Shared {
    byte_budget: usize,
    store: Mutex<Store>,
    inflight: Mutex<HashMap<u128, Arc<Slot>>>,
    m: Instruments,
}

/// The server's solve cache. See the module docs for the design.
#[derive(Clone)]
pub struct SolveCache {
    shared: Arc<Shared>,
}

impl SolveCache {
    /// A cache bounded to `byte_budget` payload bytes, counting under
    /// `server.cache_*` in `metrics`.
    pub fn new(byte_budget: usize, metrics: &MetricsRegistry) -> Self {
        SolveCache {
            shared: Arc::new(Shared {
                byte_budget,
                store: Mutex::new(Store {
                    entries: HashMap::new(),
                    order: VecDeque::new(),
                    total_bytes: 0,
                    next_seq: 0,
                }),
                inflight: Mutex::new(HashMap::new()),
                m: Instruments {
                    hits: metrics.counter("server.cache_hits"),
                    misses: metrics.counter("server.cache_misses"),
                    coalesced: metrics.counter("server.cache_coalesced"),
                    inserts: metrics.counter("server.cache_inserts"),
                    evictions: metrics.counter("server.cache_evictions"),
                    insert_crcs: metrics.counter("server.cache_insert_crcs"),
                    serve_crcs: metrics.counter("server.cache_serve_crcs"),
                    corrupt_dropped: metrics.counter("server.cache_corrupt_dropped"),
                    uncacheable: metrics.counter("server.cache_uncacheable"),
                    bypass_nondet: metrics.counter("server.cache_bypass_nondet"),
                    bytes_gauge: metrics.gauge("server.cache_bytes"),
                    entries_gauge: metrics.gauge("server.cache_entries"),
                },
            }),
        }
    }

    /// The byte budget this cache evicts under.
    pub fn byte_budget(&self) -> usize {
        self.shared.byte_budget
    }

    /// Whether `problem` must bypass the cache because its outputs are
    /// non-deterministic. A `true` return counts one bypass under
    /// `server.cache_bypass_nondet`; the caller must then skip both the
    /// lookup *and* the coalescing path — joining a non-deterministic
    /// solve would alias what are semantically independent draws.
    pub fn bypass_nondet(&self, problem: &str) -> bool {
        if is_deterministic(problem) {
            return false;
        }
        self.shared.m.bypass_nondet.inc();
        true
    }

    /// Look up `key`: serve a verified hit, join an in-flight identical
    /// solve, or become the leader obliged to solve and publish.
    pub fn probe(&self, key: u128) -> Probe {
        // Hit path: verify + decode *outside* the store lock so a large
        // decode cannot stall unrelated requests.
        if let Some((bytes, compute_secs, crc)) = self.shared.lookup(key) {
            match self.shared.serve_checked(&bytes, crc) {
                Ok(outputs) => {
                    self.shared.m.hits.inc();
                    return Probe::Hit { outputs, compute_secs };
                }
                Err(_) => {
                    // Entry failed its serve CRC or decode: it is gone
                    // (dropped by serve_checked); fall through to a miss
                    // so the request re-solves.
                    self.shared.drop_corrupt(key);
                }
            }
        }
        let mut inflight = self.shared.inflight.lock();
        if let Some(slot) = inflight.get(&key) {
            self.shared.m.coalesced.inc();
            return Probe::Join(Waiter { cache: Arc::clone(&self.shared), slot: Arc::clone(slot) });
        }
        let slot =
            Arc::new(Slot { state: Mutex::new(SlotState::Running), cond: Condvar::new() });
        inflight.insert(key, slot);
        self.shared.m.misses.inc();
        Probe::Leader(LeaderToken { cache: Arc::clone(&self.shared), key, published: false })
    }

    /// Test hook: flip one byte inside some cached entry's stored reply
    /// *without* touching its insert CRC, emulating in-memory corruption.
    /// Returns how many entries were corrupted (0 or 1).
    #[doc(hidden)]
    pub fn corrupt_one_entry_for_test(&self) -> usize {
        let mut store = self.shared.store.lock();
        for entry in store.entries.values_mut() {
            if !entry.bytes.is_empty() {
                let mut bytes = (*entry.bytes).clone();
                let mid = bytes.len() / 2;
                bytes[mid] ^= 0x40;
                entry.bytes = Arc::new(bytes);
                return 1;
            }
        }
        0
    }

    /// Test hook: flip one byte in EVERY cached entry's stored reply,
    /// keeping their insert CRCs — a whole-store corruption sweep for the
    /// chaos soak. Returns how many entries were corrupted.
    #[doc(hidden)]
    pub fn corrupt_all_entries_for_test(&self) -> usize {
        let mut store = self.shared.store.lock();
        let mut corrupted = 0;
        for entry in store.entries.values_mut() {
            if !entry.bytes.is_empty() {
                let mut bytes = (*entry.bytes).clone();
                let mid = bytes.len() / 2;
                bytes[mid] ^= 0x40;
                entry.bytes = Arc::new(bytes);
                corrupted += 1;
            }
        }
        corrupted
    }

    /// Current entry count (tests and stats).
    pub fn entries(&self) -> usize {
        self.shared.store.lock().entries.len()
    }

    /// Current payload bytes held (tests and stats).
    pub fn bytes(&self) -> usize {
        self.shared.store.lock().total_bytes
    }
}

impl Shared {
    /// Fetch a hit's shared bytes (bumping its LRU position) without
    /// decoding under the lock.
    fn lookup(&self, key: u128) -> Option<(Arc<Vec<u8>>, f64, u32)> {
        let mut store = self.store.lock();
        let seq = store.next_seq;
        let entry = store.entries.get_mut(&key)?;
        entry.seq = seq;
        let out = (Arc::clone(&entry.bytes), entry.compute_secs, entry.crc);
        store.next_seq += 1;
        store.order.push_back((key, seq));
        Some(out)
    }

    /// Serve-side CRC + decode of a stored reply. Every successful serve
    /// re-verifies the insert-time CRC, so a corrupted entry is caught
    /// here — before any byte reaches a client.
    fn serve_checked(&self, bytes: &[u8], crc: u32) -> Result<Vec<DataObject>> {
        self.m.serve_crcs.inc();
        if crc32(bytes) != crc {
            self.m.corrupt_dropped.inc();
            return Err(NetSolveError::Corrupt("cached reply failed serve-time CRC".into()));
        }
        from_bytes(bytes).map_err(|e| {
            self.m.corrupt_dropped.inc();
            NetSolveError::Corrupt(format!("cached reply failed decode: {e}"))
        })
    }

    /// Remove an entry that failed its serve check.
    fn drop_corrupt(&self, key: u128) {
        let mut store = self.store.lock();
        if let Some(entry) = store.entries.remove(&key) {
            store.total_bytes -= entry.cost();
            self.m.bytes_gauge.set(store.total_bytes as i64);
            self.m.entries_gauge.set(store.entries.len() as i64);
        }
    }

    fn publish_ok(&self, key: u128, outputs: &[DataObject], compute_secs: f64) {
        let bytes = Arc::new(to_bytes(outputs));
        self.m.insert_crcs.inc();
        let crc = crc32(&bytes);
        let cost = bytes.len() + ENTRY_OVERHEAD;
        if cost <= self.byte_budget {
            let mut store = self.store.lock();
            let seq = store.next_seq;
            store.next_seq += 1;
            let prev = store.entries.insert(
                key,
                Entry { bytes: Arc::clone(&bytes), compute_secs, crc, seq },
            );
            if let Some(prev) = prev {
                store.total_bytes -= prev.cost();
            }
            store.total_bytes += cost;
            store.order.push_back((key, seq));
            self.m.inserts.inc();
            self.evict_over_budget(&mut store);
            self.m.bytes_gauge.set(store.total_bytes as i64);
            self.m.entries_gauge.set(store.entries.len() as i64);
        } else {
            // Too large to ever fit: coalescing still applies, caching
            // does not.
            self.m.uncacheable.inc();
        }
        // Publish *after* the cache insert so there is no window where a
        // new arrival finds neither the entry nor the in-flight slot.
        self.finish(key, Ok((bytes, compute_secs, crc)));
    }

    fn publish_err(&self, key: u128, code: u32, detail: String) {
        self.finish(key, Err((code, detail)));
    }

    fn finish(
        &self,
        key: u128,
        outcome: SlotOutcome,
    ) {
        let slot = self.inflight.lock().remove(&key);
        if let Some(slot) = slot {
            *slot.state.lock() = SlotState::Done(outcome);
            slot.cond.notify_all();
        }
    }

    fn evict_over_budget(&self, store: &mut Store) {
        while store.total_bytes > self.byte_budget {
            let Some((key, seq)) = store.order.pop_front() else { break };
            let stale = store.entries.get(&key).map(|e| e.seq != seq).unwrap_or(true);
            if stale {
                continue;
            }
            let entry = store.entries.remove(&key).expect("checked above");
            store.total_bytes -= entry.cost();
            self.m.evictions.inc();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache(budget: usize) -> (SolveCache, Arc<MetricsRegistry>) {
        let metrics = Arc::new(MetricsRegistry::new());
        (SolveCache::new(budget, &metrics), metrics)
    }

    fn vec_obj(n: usize, fill: f64) -> DataObject {
        DataObject::Vector(vec![fill; n])
    }

    #[test]
    fn distinct_problems_over_identical_bytes_get_distinct_keys() {
        let inputs = vec![vec_obj(64, 1.5)];
        assert_ne!(solve_key("dnrm2", &inputs), solve_key("vsort", &inputs));
        // And the key is stable for identical requests.
        assert_eq!(solve_key("dnrm2", &inputs), solve_key("dnrm2", &inputs.clone()));
    }

    #[test]
    fn shape_discriminates_even_with_identical_payload_bytes() {
        // A 2x2 matrix and a 4-vector carry the same 32 payload bytes;
        // the canonical encoding's kind tag + dims must split them.
        let m = netsolve_core::Matrix::from_col_major(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let v = vec![1.0, 2.0, 3.0, 4.0];
        assert_ne!(
            solve_key("p", &[DataObject::Matrix(m)]),
            solve_key("p", &[DataObject::Vector(v)])
        );
    }

    #[test]
    fn hit_after_leader_publishes() {
        let (cache, _) = cache(1 << 20);
        let key = solve_key("ddot", &[vec_obj(4, 1.0)]);
        let token = match cache.probe(key) {
            Probe::Leader(t) => t,
            _ => panic!("first probe must lead"),
        };
        token.complete_ok(&[DataObject::Double(42.0)], 0.25);
        match cache.probe(key) {
            Probe::Hit { outputs, compute_secs } => {
                assert_eq!(outputs[0].as_double().unwrap(), 42.0);
                assert_eq!(compute_secs, 0.25);
            }
            _ => panic!("second probe must hit"),
        }
    }

    #[test]
    fn errors_propagate_to_waiters_and_are_not_cached() {
        let (cache, _) = cache(1 << 20);
        let key = solve_key("dgesv", &[vec_obj(4, 0.0)]);
        let token = match cache.probe(key) {
            Probe::Leader(t) => t,
            _ => panic!(),
        };
        let waiter = match cache.probe(key) {
            Probe::Join(w) => w,
            _ => panic!("second identical probe must join"),
        };
        token.complete_err(&NetSolveError::Numerical("singular".into()));
        let err = waiter.wait().unwrap_err();
        assert!(matches!(err, NetSolveError::Numerical(_)), "{err}");
        // Not cached: the next probe leads again.
        assert!(matches!(cache.probe(key), Probe::Leader(_)));
        assert_eq!(cache.entries(), 0);
    }

    #[test]
    fn dropped_leader_unblocks_waiters() {
        let (cache, _) = cache(1 << 20);
        let key = solve_key("ddot", &[vec_obj(2, 2.0)]);
        let token = match cache.probe(key) {
            Probe::Leader(t) => t,
            _ => panic!(),
        };
        let waiter = match cache.probe(key) {
            Probe::Join(w) => w,
            _ => panic!(),
        };
        drop(token); // leader panicked / abandoned the solve
        let err = waiter.wait().unwrap_err();
        assert!(err.detail().contains("abandoned"), "{err}");
        assert!(matches!(cache.probe(key), Probe::Leader(_)));
    }

    #[test]
    fn lru_evicts_oldest_under_byte_budget() {
        // Budget fits two ~160-byte entries (vector of 16 f64 + overhead),
        // not three.
        let (cache, metrics) = cache(450);
        let keys: Vec<u128> =
            (0..3).map(|i| solve_key("p", &[vec_obj(1, i as f64)])).collect();
        for &key in &keys {
            match cache.probe(key) {
                Probe::Leader(t) => t.complete_ok(&[vec_obj(16, 0.0)], 0.1),
                _ => panic!(),
            }
        }
        assert_eq!(cache.entries(), 2, "third insert must evict");
        // Oldest (keys[0]) is gone; the newer two survive.
        assert!(matches!(cache.probe(keys[0]), Probe::Leader(_)));
        assert_eq!(metrics.snapshot("s").counter("server.cache_evictions"), 1);
        // Touching keys[1] then inserting another must evict keys[2].
        match cache.probe(keys[0]) {
            Probe::Leader(t) => t.complete_err(&NetSolveError::Internal("skip".into())),
            _ => panic!(),
        }
        assert!(matches!(cache.probe(keys[1]), Probe::Hit { .. }));
        let key3 = solve_key("p", &[vec_obj(1, 9.0)]);
        match cache.probe(key3) {
            Probe::Leader(t) => t.complete_ok(&[vec_obj(16, 0.0)], 0.1),
            _ => panic!(),
        }
        assert!(matches!(cache.probe(keys[1]), Probe::Hit { .. }), "recently used survives");
        assert!(matches!(cache.probe(keys[2]), Probe::Leader(_)), "LRU victim evicted");
    }

    #[test]
    fn corrupted_entry_is_never_served() {
        let (cache, metrics) = cache(1 << 20);
        let key = solve_key("ddot", &[vec_obj(8, 1.0)]);
        match cache.probe(key) {
            Probe::Leader(t) => t.complete_ok(&[vec_obj(8, 7.0)], 0.1),
            _ => panic!(),
        }
        assert_eq!(cache.corrupt_one_entry_for_test(), 1);
        // The probe must NOT hit: serve-CRC catches the flip, the entry
        // is dropped, and the caller becomes the leader re-solving.
        match cache.probe(key) {
            Probe::Leader(t) => t.complete_ok(&[vec_obj(8, 7.0)], 0.1),
            Probe::Hit { .. } => panic!("corrupted entry served"),
            Probe::Join(_) => panic!("nothing should be in flight"),
        }
        // Healthy again after the re-solve.
        assert!(matches!(cache.probe(key), Probe::Hit { .. }));
        let snap = metrics.snapshot("s");
        assert_eq!(snap.counter("server.cache_corrupt_dropped"), 1);
        // Serve-CRC ran on the corrupted probe and the healthy one;
        // insert-CRC ran on the original publish and the re-solve.
        assert!(snap.counter("server.cache_serve_crcs") >= 2);
        assert!(snap.counter("server.cache_insert_crcs") >= 2);
    }

    #[test]
    fn oversized_results_coalesce_but_do_not_cache() {
        let (cache, metrics) = cache(128);
        let key = solve_key("big", &[vec_obj(1, 0.0)]);
        let token = match cache.probe(key) {
            Probe::Leader(t) => t,
            _ => panic!(),
        };
        let waiter = match cache.probe(key) {
            Probe::Join(w) => w,
            _ => panic!(),
        };
        token.complete_ok(&[vec_obj(64, 1.0)], 0.5); // 512B > 128B budget
        let (outputs, _) = waiter.wait().unwrap();
        assert_eq!(outputs[0].as_vector().unwrap().len(), 64);
        assert_eq!(cache.entries(), 0);
        assert_eq!(metrics.snapshot("s").counter("server.cache_uncacheable"), 1);
    }

    #[test]
    fn concurrent_identical_probes_produce_one_leader() {
        let (cache, metrics) = cache(1 << 20);
        let cache = Arc::new(cache);
        let key = solve_key("ddot", &[vec_obj(32, 3.0)]);
        let leaders = Arc::new(std::sync::atomic::AtomicU64::new(0));
        let barrier = Arc::new(std::sync::Barrier::new(8));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let cache = Arc::clone(&cache);
                let leaders = Arc::clone(&leaders);
                let barrier = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    barrier.wait();
                    match cache.probe(key) {
                        Probe::Leader(t) => {
                            leaders.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                            // Hold the solve open long enough for the
                            // others to join.
                            std::thread::sleep(std::time::Duration::from_millis(30));
                            t.complete_ok(&[DataObject::Double(6.0)], 0.2);
                            6.0
                        }
                        Probe::Join(w) => {
                            let (outputs, _) = w.wait().unwrap();
                            outputs[0].as_double().unwrap()
                        }
                        Probe::Hit { outputs, .. } => outputs[0].as_double().unwrap(),
                    }
                })
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), 6.0);
        }
        assert_eq!(leaders.load(std::sync::atomic::Ordering::Relaxed), 1);
        let snap = metrics.snapshot("s");
        assert_eq!(snap.counter("server.cache_misses"), 1);
        assert_eq!(
            snap.counter("server.cache_coalesced") + snap.counter("server.cache_hits"),
            7,
            "everyone else joined or hit"
        );
    }
}
