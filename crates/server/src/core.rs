//! The server brain: validate a request against the problem catalogue,
//! run the solver, time it, and shape the reply.

use std::sync::Arc;
use std::time::Instant;

use netsolve_core::admission::AdmissionPolicy;
use netsolve_core::data::DataObject;
use netsolve_core::error::{NetSolveError, Result};
use netsolve_obs::{MetricsRegistry, SpanContext, Tracer};
use netsolve_pdl::ProblemRegistry;
use netsolve_proto::Message;
use netsolve_solvers::execute;

use crate::cache::{solve_key, Probe, SolveCache};

/// How the server satisfies requests.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ExecutionMode {
    /// Actually run the numerical routine.
    Real,
    /// Sleep for `complexity(n) / mflops` and return zero-filled outputs of
    /// the declared shapes. Used to emulate a machine of a chosen speed in
    /// live end-to-end experiments without requiring that hardware — the
    /// simulation substitute DESIGN.md documents.
    Synthetic {
        /// Emulated machine speed, Mflop/s.
        mflops: f64,
    },
}

/// Transport-free server logic.
pub struct ServerCore {
    problems: ProblemRegistry,
    mode: ExecutionMode,
    metrics: Arc<MetricsRegistry>,
    tracer: Arc<Tracer>,
    /// Optional content-addressed solve cache (+ in-flight coalescing).
    cache: Option<SolveCache>,
    /// Optional admission policy, shared with the daemon's accept-time
    /// gate. The core runs its dispatch-time checks and feeds observed
    /// service times back into the policy's per-problem histograms.
    admission: Option<Arc<AdmissionPolicy>>,
}

/// A computed reply plus how long the computation took.
#[derive(Debug)]
pub struct Execution {
    /// Output objects in catalogue order.
    pub outputs: Vec<DataObject>,
    /// Wall-clock compute seconds.
    pub compute_secs: f64,
}

impl ServerCore {
    /// Server offering the given problem catalogue.
    pub fn new(problems: ProblemRegistry, mode: ExecutionMode) -> Self {
        ServerCore {
            problems,
            mode,
            metrics: Arc::new(MetricsRegistry::new()),
            tracer: Arc::new(Tracer::new()),
            cache: None,
            admission: None,
        }
    }

    /// Replace the tracer (e.g. [`Tracer::disabled`] for overhead-free
    /// operation, or a shared tracer in tests).
    pub fn with_tracer(mut self, tracer: Arc<Tracer>) -> Self {
        self.tracer = tracer;
        self
    }

    /// Enable the content-addressed solve cache, bounded to `byte_budget`
    /// payload bytes (LRU). Identical concurrent requests additionally
    /// coalesce onto one in-flight solve. Counters land under
    /// `server.cache_*` in this core's metrics registry.
    pub fn with_cache(mut self, byte_budget: usize) -> Self {
        self.cache = Some(SolveCache::new(byte_budget, &self.metrics));
        self
    }

    /// The solve cache, if enabled via [`ServerCore::with_cache`].
    pub fn cache(&self) -> Option<&SolveCache> {
        self.cache.as_ref()
    }

    /// Install an admission policy. The daemon shares the same `Arc` for
    /// its accept-time queue gate; the core runs the policy's
    /// deadline checks at dispatch time and feeds observed service
    /// seconds into its per-problem histograms after every solve —
    /// the exact object `netsolve-sim` runs on virtual time.
    pub fn with_admission(mut self, policy: Arc<AdmissionPolicy>) -> Self {
        self.admission = Some(policy);
        self
    }

    /// The admission policy, if installed via [`ServerCore::with_admission`].
    pub fn admission(&self) -> Option<&Arc<AdmissionPolicy>> {
        self.admission.as_ref()
    }

    /// Server offering the full standard catalogue with real execution.
    pub fn with_standard_catalogue() -> Self {
        Self::new(ProblemRegistry::with_standard_catalogue(), ExecutionMode::Real)
    }

    /// The catalogue this server advertises.
    pub fn problems(&self) -> &ProblemRegistry {
        &self.problems
    }

    /// The execution mode.
    pub fn mode(&self) -> ExecutionMode {
        self.mode
    }

    /// The registry holding this server's `server.*` instruments. The
    /// daemon shares it for accept-loop metrics, and [`Message::StatsQuery`]
    /// snapshots it over the wire.
    pub fn metrics(&self) -> Arc<MetricsRegistry> {
        Arc::clone(&self.metrics)
    }

    /// The tracer holding this server's `server.*` phase spans.
    /// [`Message::TraceQuery`] snapshots it over the wire.
    pub fn tracer(&self) -> Arc<Tracer> {
        Arc::clone(&self.tracer)
    }

    /// Validate and execute one request.
    pub fn run(&self, problem: &str, inputs: &[DataObject]) -> Result<Execution> {
        let spec = self.problems.require(problem)?;
        spec.check_inputs(inputs)?;
        let start = Instant::now();
        let outputs = match self.mode {
            ExecutionMode::Real => {
                let outputs = execute(problem, inputs)?;
                spec.check_outputs(&outputs).map_err(|e| {
                    NetSolveError::Internal(format!(
                        "executor output mismatch for '{problem}': {e}"
                    ))
                })?;
                outputs
            }
            ExecutionMode::Synthetic { mflops } => {
                let n = spec.dominant_dim(inputs);
                let secs = spec.complexity.seconds_at(n, mflops);
                // Cap synthetic sleeps so a mis-sized experiment cannot
                // wedge a test run for hours.
                std::thread::sleep(std::time::Duration::from_secs_f64(secs.min(30.0)));
                synthetic_outputs(spec, n)
            }
        };
        Ok(Execution { outputs, compute_secs: start.elapsed().as_secs_f64() })
    }

    /// Protocol-level dispatch: answer one client message.
    pub fn handle_message(&self, msg: &Message) -> Message {
        self.handle_message_at(msg, Instant::now())
    }

    /// Like [`ServerCore::handle_message`], but measuring deadline budgets
    /// from `received_at` — the instant the daemon pulled the message off
    /// the wire — so time spent queued behind other work counts against
    /// the request's deadline.
    pub fn handle_message_at(&self, msg: &Message, received_at: Instant) -> Message {
        match msg {
            Message::RequestSubmit {
                request_id,
                deadline_ms,
                problem,
                inputs,
                trace_id,
                parent_span,
            } => {
                // Adopt the wire-propagated trace context: the parent span
                // is the client's per-attempt span, so retries stitch as
                // distinct subtrees of one trace.
                let ctx = SpanContext {
                    trace_id: *trace_id,
                    parent_span: *parent_span,
                    request_id: *request_id,
                };
                self.metrics.counter("server.requests").inc();
                // One clock read serves as queue-span end, solve-span
                // start and the queue histogram sample — keeping the
                // traced path at two reads per request total.
                let dispatched = Instant::now();
                let queued = dispatched.saturating_duration_since(received_at);
                let queue_timer = self.tracer.start_at(received_at);
                self.metrics
                    .histogram("server.queue_secs")
                    .record_secs_traced(queued.as_secs_f64(), *trace_id);
                self.tracer.record_at(ctx, queue_timer, dispatched, "server", "queue", String::new());
                // Shed expired work: if the client's remaining budget was
                // already consumed before execution starts, nobody is
                // waiting for this result.
                // Execution-time backstop, distinct from the daemon's
                // admission gate: the gate sheds *before* a solve slot is
                // reserved (counted under `server.queue_deadline_shed` /
                // `server.admission_shed`); this catches budgets that
                // expire between slot reservation and dispatch.
                if *deadline_ms > 0 {
                    let budget = std::time::Duration::from_millis(*deadline_ms);
                    if queued >= budget {
                        self.metrics.counter("server.deadline_shed").inc();
                        self.tracer.point(
                            ctx,
                            "server",
                            "deadline_shed",
                            format!("budget={deadline_ms}ms"),
                        );
                        return Message::from_error(&NetSolveError::Timeout(format!(
                            "request {request_id} deadline ({deadline_ms} ms) expired before execution"
                        )));
                    }
                }
                // Non-deterministic problems (e.g. `quad_mc` drawing
                // fresh entropy) bypass the cache entirely: a cached or
                // coalesced reply would alias independent Monte Carlo
                // draws onto one sample.
                let cache = match &self.cache {
                    Some(c) if c.bypass_nondet(problem) => {
                        self.tracer.point(ctx, "server", "cache_bypass_nondet", String::new());
                        None
                    }
                    other => other.as_ref(),
                };
                // Cache + coalesce: hash the canonical encoding and
                // either serve a verified hit, join an identical solve
                // already in flight, or lead the solve and publish it.
                // Exactly one `solve` span exists per unique in-flight
                // problem — hits and joiners never reach the solver.
                let leader = match cache {
                    None => None,
                    Some(cache) => {
                        let lookup_timer = self.tracer.start_at(dispatched);
                        let key = solve_key(problem, inputs);
                        let probe = cache.probe(key);
                        let outcome = match &probe {
                            Probe::Hit { .. } => "hit",
                            Probe::Leader(_) => "miss",
                            Probe::Join(_) => "coalesced",
                        };
                        self.tracer.record(
                            ctx,
                            lookup_timer,
                            "server",
                            "cache_lookup",
                            outcome.to_string(),
                        );
                        match probe {
                            Probe::Hit { outputs, compute_secs } => {
                                self.tracer.point(ctx, "server", "cache_hit", String::new());
                                self.metrics.counter("server.requests_ok").inc();
                                return Message::RequestReply {
                                    request_id: *request_id,
                                    outputs,
                                    compute_secs,
                                    cached: true,
                                };
                            }
                            Probe::Join(waiter) => {
                                let wait_timer = self.tracer.start();
                                let joined = waiter.wait();
                                let detail = match &joined {
                                    Ok(_) => String::new(),
                                    Err(e) => format!("err={e}"),
                                };
                                self.tracer.record(
                                    ctx,
                                    wait_timer,
                                    "server",
                                    "coalesce_wait",
                                    detail,
                                );
                                return match joined {
                                    Ok((outputs, compute_secs)) => {
                                        self.metrics.counter("server.requests_ok").inc();
                                        Message::RequestReply {
                                            request_id: *request_id,
                                            outputs,
                                            compute_secs,
                                            cached: true,
                                        }
                                    }
                                    Err(e) => {
                                        self.metrics.counter("server.requests_failed").inc();
                                        Message::from_error(&e)
                                    }
                                };
                            }
                            Probe::Leader(token) => Some(token),
                        }
                    }
                };
                // Without a cache the dispatch clock read still doubles
                // as the solve-span start (the uncached path keeps its
                // two-reads-per-request budget — see the r9 experiment);
                // with one, the lookup sits in between.
                let solve_timer = if cache.is_some() {
                    self.tracer.start()
                } else {
                    self.tracer.start_at(dispatched)
                };
                let run = self.run(problem, inputs);
                let solve_detail = match &run {
                    // Success is the hot path: no allocation per event.
                    // The problem name already rides on the client's
                    // attempt span, so an empty detail loses nothing.
                    Ok(_) => String::new(),
                    Err(e) => format!("problem={problem} err={e}"),
                };
                self.tracer.record(ctx, solve_timer, "server", "solve", solve_detail);
                match run {
                    Ok(exec) => {
                        if let Some(token) = leader {
                            token.complete_ok(&exec.outputs, exec.compute_secs);
                        }
                        // Feed the admission policy's per-problem service
                        // histogram — the basis of its deadline-aware
                        // early rejects and retry hints.
                        if let Some(policy) = &self.admission {
                            policy.observe_service(problem, exec.compute_secs);
                        }
                        self.metrics.counter("server.requests_ok").inc();
                        self.metrics
                            .histogram("server.compute_secs")
                            .record_secs_traced(exec.compute_secs, *trace_id);
                        Message::RequestReply {
                            request_id: *request_id,
                            outputs: exec.outputs,
                            compute_secs: exec.compute_secs,
                            cached: false,
                        }
                    }
                    Err(e) => {
                        if let Some(token) = leader {
                            token.complete_err(&e);
                        }
                        self.metrics.counter("server.requests_failed").inc();
                        Message::from_error(&e)
                    }
                }
            }
            Message::TraceQuery { trace_id } => {
                // Same monotone downgrade catch-up as StatsQuery: a trace
                // pull from an old peer still surfaces in the counter.
                let c = self.metrics.counter("proto.version_downgrade");
                let global = netsolve_proto::version_downgrades();
                let seen = c.get();
                if global > seen {
                    c.add(global - seen);
                }
                Message::TraceReply {
                    component: "server".to_string(),
                    spans: self.tracer.snapshot_trace(*trace_id),
                }
            }
            Message::StatsQuery => {
                // Mirror the process-wide protocol downgrade count into
                // this registry (monotone catch-up — the counter may lag
                // between stats queries, never run backwards).
                let c = self.metrics.counter("proto.version_downgrade");
                let global = netsolve_proto::version_downgrades();
                let seen = c.get();
                if global > seen {
                    c.add(global - seen);
                }
                // Likewise for sends that missed the thread-local write
                // scratch (reentrant writers only; should stay at zero).
                let c = self.metrics.counter("proto.write_scratch_fallback");
                let global = netsolve_proto::write_scratch_fallbacks();
                let seen = c.get();
                if global > seen {
                    c.add(global - seen);
                }
                Message::StatsReply(self.metrics.snapshot("server"))
            }
            Message::Ping => Message::Pong,
            Message::ListProblems => Message::ProblemCatalogue {
                names: self.problems.names(),
            },
            Message::DescribeProblem { problem } => match self.problems.get(problem) {
                Some(spec) => Message::ProblemDescription { pdl: netsolve_pdl::render(spec) },
                None => Message::from_error(&NetSolveError::ProblemNotFound(problem.clone())),
            },
            other => Message::from_error(&NetSolveError::Protocol(format!(
                "server cannot handle {}",
                other.name()
            ))),
        }
    }
}

/// Zero-filled outputs of the declared kinds/sizes for synthetic execution.
fn synthetic_outputs(spec: &netsolve_core::ProblemSpec, n: u64) -> Vec<DataObject> {
    use netsolve_core::ObjectKind;
    spec.outputs
        .iter()
        .map(|o| match o.kind {
            ObjectKind::IntScalar => DataObject::Int(0),
            ObjectKind::DoubleScalar => DataObject::Double(0.0),
            ObjectKind::Vector => DataObject::Vector(vec![0.0; n as usize]),
            ObjectKind::Matrix => {
                DataObject::Matrix(netsolve_core::Matrix::zeros(n as usize, n as usize))
            }
            ObjectKind::SparseMatrix => {
                DataObject::Sparse(netsolve_core::CsrMatrix::identity(n as usize))
            }
            ObjectKind::Text => DataObject::Text(String::new()),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsolve_core::matrix::{vec_max_abs_diff, Matrix};
    use netsolve_core::rng::Rng64;

    #[test]
    fn runs_real_dgesv() {
        let core = ServerCore::with_standard_catalogue();
        let mut rng = Rng64::new(7);
        let a = Matrix::random_diag_dominant(12, &mut rng);
        let x_true: Vec<f64> = (0..12).map(|i| i as f64).collect();
        let b = a.matvec(&x_true).unwrap();
        let exec = core.run("dgesv", &[a.into(), b.into()]).unwrap();
        assert_eq!(exec.outputs.len(), 1);
        assert!(vec_max_abs_diff(exec.outputs[0].as_vector().unwrap(), &x_true) < 1e-9);
        assert!(exec.compute_secs >= 0.0);
    }

    #[test]
    fn rejects_unknown_problem_and_bad_inputs() {
        let core = ServerCore::with_standard_catalogue();
        assert!(matches!(
            core.run("made_up", &[]),
            Err(NetSolveError::ProblemNotFound(_))
        ));
        assert!(matches!(
            core.run("dgesv", &[DataObject::Int(1)]),
            Err(NetSolveError::BadArguments(_))
        ));
    }

    #[test]
    fn numerical_failures_propagate() {
        let core = ServerCore::with_standard_catalogue();
        let singular = Matrix::zeros(3, 3);
        let r = core.run("dgesv", &[singular.into(), vec![1.0, 2.0, 3.0].into()]);
        assert!(matches!(r, Err(NetSolveError::Numerical(_))));
    }

    #[test]
    fn synthetic_mode_sleeps_proportionally_and_shapes_outputs() {
        // 100 Mflop/s emulated machine, dgesv n = 200: (2/3)(8e6)/(1e8) ≈ 53 ms.
        let core = ServerCore::new(
            ProblemRegistry::with_standard_catalogue(),
            ExecutionMode::Synthetic { mflops: 100.0 },
        );
        let a = Matrix::identity(200);
        let b = vec![0.0; 200];
        let start = Instant::now();
        let exec = core.run("dgesv", &[a.into(), b.into()]).unwrap();
        let elapsed = start.elapsed().as_secs_f64();
        assert!(elapsed > 0.03, "too fast: {elapsed}");
        assert_eq!(exec.outputs.len(), 1);
        assert_eq!(exec.outputs[0].as_vector().unwrap().len(), 200);
    }

    /// After the process has decoded an old-version frame, a StatsQuery
    /// must surface `proto.version_downgrade` in the snapshot.
    #[test]
    fn stats_surface_version_downgrades() {
        // Force at least one downgraded decode through the real reader.
        let v1 = netsolve_proto::frame_bytes_versioned(&Message::Ping, 1).unwrap();
        let (msg, _) = netsolve_proto::parse_frame(&v1).unwrap();
        assert_eq!(msg, Message::Ping);

        let core = ServerCore::with_standard_catalogue();
        match core.handle_message(&Message::StatsQuery) {
            Message::StatsReply(snap) => {
                let n = snap
                    .counters
                    .iter()
                    .find(|(name, _)| name == "proto.version_downgrade")
                    .map(|(_, v)| *v)
                    .expect("proto.version_downgrade counter missing from stats");
                assert!(n >= 1, "downgrade not counted: {n}");
            }
            other => panic!("expected StatsReply, got {other:?}"),
        }
    }

    /// The write-scratch fallback counter must be present in stats (its
    /// value stays zero unless a reentrant send bypassed the scratch).
    #[test]
    fn stats_surface_write_scratch_fallbacks() {
        let core = ServerCore::with_standard_catalogue();
        match core.handle_message(&Message::StatsQuery) {
            Message::StatsReply(snap) => {
                let n = snap
                    .counters
                    .iter()
                    .find(|(name, _)| name == "proto.write_scratch_fallback")
                    .map(|(_, v)| *v)
                    .expect("proto.write_scratch_fallback counter missing from stats");
                assert_eq!(n, netsolve_proto::write_scratch_fallbacks());
            }
            other => panic!("expected StatsReply, got {other:?}"),
        }
    }

    #[test]
    fn message_dispatch() {
        let core = ServerCore::with_standard_catalogue();
        let reply = core.handle_message(&Message::RequestSubmit {
            request_id: 77,
            deadline_ms: 0,
            problem: "ddot".into(),
            inputs: vec![vec![1.0, 2.0].into(), vec![3.0, 4.0].into()],
            trace_id: 0,
            parent_span: 0,
        });
        match reply {
            Message::RequestReply { request_id, outputs, .. } => {
                assert_eq!(request_id, 77);
                assert_eq!(outputs[0].as_double().unwrap(), 11.0);
            }
            other => panic!("unexpected {other:?}"),
        }

        assert_eq!(core.handle_message(&Message::Ping), Message::Pong);

        let reply = core.handle_message(&Message::ListProblems);
        assert!(matches!(reply, Message::ProblemCatalogue { names } if names.len() >= 16));

        let reply = core.handle_message(&Message::DescribeProblem { problem: "fft".into() });
        assert!(matches!(reply, Message::ProblemDescription { .. }));

        let reply = core.handle_message(&Message::DescribeProblem { problem: "zz".into() });
        assert!(matches!(reply, Message::Error { .. }));

        let reply = core.handle_message(&Message::ListProblems);
        assert!(!matches!(reply, Message::Error { .. }));

        // misdirected message
        let reply = core.handle_message(&Message::Pong);
        assert!(matches!(reply, Message::Error { .. }));
    }

    #[test]
    fn failed_request_reports_error_code() {
        let core = ServerCore::with_standard_catalogue();
        let reply = core.handle_message(&Message::RequestSubmit {
            request_id: 1,
            deadline_ms: 0,
            problem: "nope".into(),
            inputs: vec![],
            trace_id: 0,
            parent_span: 0,
        });
        match reply {
            Message::Error { code, .. } => {
                assert_eq!(code, NetSolveError::ProblemNotFound(String::new()).code());
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn expired_deadline_sheds_request() {
        let core = ServerCore::with_standard_catalogue();
        let msg = Message::RequestSubmit {
            request_id: 9,
            deadline_ms: 10,
            problem: "ddot".into(),
            inputs: vec![vec![1.0].into(), vec![1.0].into()],
            trace_id: 0,
            parent_span: 0,
        };
        // Received 50 ms ago with a 10 ms budget: shed with Timeout.
        let received = Instant::now() - std::time::Duration::from_millis(50);
        match core.handle_message_at(&msg, received) {
            Message::Error { code, detail } => {
                assert_eq!(code, NetSolveError::Timeout(String::new()).code());
                assert!(detail.contains("deadline"), "detail: {detail}");
            }
            other => panic!("unexpected {other:?}"),
        }
        // Fresh budget: executes normally.
        match core.handle_message_at(&msg, Instant::now()) {
            Message::RequestReply { request_id, .. } => assert_eq!(request_id, 9),
            other => panic!("unexpected {other:?}"),
        }
        // No deadline: never shed.
        let no_deadline = Message::RequestSubmit {
            request_id: 10,
            deadline_ms: 0,
            problem: "ddot".into(),
            inputs: vec![vec![1.0].into(), vec![1.0].into()],
            trace_id: 0,
            parent_span: 0,
        };
        assert!(matches!(
            core.handle_message_at(&no_deadline, received),
            Message::RequestReply { .. }
        ));
    }
}
