//! The live computational-server daemon: registers with an agent, serves
//! client requests, and reports workload on NetSolve's lazy policy.

use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use netsolve_core::admission::{
    format_busy_detail, AdmissionConfig, AdmissionDecision, AdmissionPolicy, ShedReason,
};
use netsolve_core::config::{TelemetryPolicy, WorkloadPolicy};
use netsolve_core::error::{NetSolveError, Result};
use netsolve_net::{call, Connection, Transport};
use netsolve_proto::{Message, ServerDescriptor};
use parking_lot::Mutex;
// The parking_lot shim's MutexGuard *is* `std::sync::MutexGuard`, so std's
// Condvar pairs with it directly (same pattern as the solve cache).
use std::sync::Condvar;
use std::time::Instant;

use crate::core::ServerCore;

/// Static description of a server being brought up.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Host name reported to the agent.
    pub host: String,
    /// Listen hint (transport-specific).
    pub listen_hint: String,
    /// Benchmarked (or emulated) performance, Mflop/s.
    pub mflops: f64,
    /// Workload reporting policy.
    pub workload: WorkloadPolicy,
    /// Concurrent requests considered "100% workload".
    pub capacity: u32,
    /// Hard cap on concurrent connection-service threads. Connections
    /// arriving past the cap are answered with a retryable Busy error and
    /// dropped, so a connection flood degrades into shed load instead of
    /// unbounded thread growth.
    pub max_connections: u32,
    /// Admission control. When set, requests pass an [`AdmissionPolicy`]
    /// gate *before* reserving one of `capacity` solve slots: queue-depth
    /// shed with hysteresis, deadline-aware early reject, and a distinct
    /// shed for budgets that expire while queued. `None` (the default)
    /// keeps the pre-admission behavior: every accepted connection solves
    /// immediately on its own thread.
    pub admission: Option<AdmissionConfig>,
    /// Telemetry sampling: how often the daemon snapshots its metrics
    /// into the windowed series that answers `FleetStatsQuery`.
    pub telemetry: TelemetryPolicy,
}

impl ServerConfig {
    /// Reasonable defaults for in-process experiments: a faster
    /// telemetry tick than the live default so short-lived test trios
    /// accumulate windowed history promptly.
    pub fn quick(host: &str, listen_hint: &str, mflops: f64) -> Self {
        ServerConfig {
            host: host.to_string(),
            listen_hint: listen_hint.to_string(),
            mflops,
            workload: WorkloadPolicy::default(),
            capacity: 1,
            max_connections: 64,
            admission: None,
            telemetry: TelemetryPolicy { tick_secs: 0.25, ..TelemetryPolicy::default() },
        }
    }
}

/// Bounded solve-slot gate guarding the cores behind the thread-per-
/// connection accept loop. `capacity` slots solve concurrently; everyone
/// else waits here — which is what makes queue-depth admission (and
/// "budget expired while queued") physically real on the live server.
struct AdmissionGate {
    policy: Arc<AdmissionPolicy>,
    slots: u32,
    in_service: Mutex<u32>,
    cond: Condvar,
    waiting: AtomicU32,
}

enum SlotOutcome {
    /// A solve slot is held; the caller must `release()` when done.
    Acquired,
    /// The request's deadline budget ran out while it waited; no slot
    /// was ever reserved.
    ExpiredInQueue,
}

impl AdmissionGate {
    fn new(policy: Arc<AdmissionPolicy>, slots: u32) -> Self {
        AdmissionGate {
            policy,
            slots: slots.max(1),
            in_service: Mutex::new(0),
            cond: Condvar::new(),
            waiting: AtomicU32::new(0),
        }
    }

    /// The solve queue a new arrival would join: requests waiting for a
    /// slot plus requests currently solving.
    fn depth(&self) -> usize {
        let in_service = *self.in_service.lock();
        self.waiting.load(Ordering::Acquire) as usize + in_service as usize
    }

    /// Wait for a solve slot, giving up (without ever reserving one) if
    /// the deadline budget expires first. `deadline_ms == 0` waits
    /// indefinitely.
    fn acquire(&self, received_at: Instant, deadline_ms: u64) -> SlotOutcome {
        let budget = (deadline_ms > 0).then(|| Duration::from_millis(deadline_ms));
        self.waiting.fetch_add(1, Ordering::AcqRel);
        let mut in_service = self.in_service.lock();
        loop {
            // Budget check *before* reserving: an expired request must
            // never consume a slot.
            if let Some(b) = budget {
                if received_at.elapsed() >= b {
                    self.waiting.fetch_sub(1, Ordering::AcqRel);
                    return SlotOutcome::ExpiredInQueue;
                }
            }
            if *in_service < self.slots {
                *in_service += 1;
                self.waiting.fetch_sub(1, Ordering::AcqRel);
                return SlotOutcome::Acquired;
            }
            in_service = match budget {
                Some(b) => {
                    let remaining = b.saturating_sub(received_at.elapsed());
                    self.cond
                        .wait_timeout(in_service, remaining)
                        .unwrap_or_else(|poisoned| poisoned.into_inner())
                        .0
                }
                None => self
                    .cond
                    .wait(in_service)
                    .unwrap_or_else(|poisoned| poisoned.into_inner()),
            };
        }
    }

    fn release(&self) {
        {
            let mut in_service = self.in_service.lock();
            *in_service = in_service.saturating_sub(1);
        }
        self.cond.notify_one();
    }
}

/// The daemon's windowed-stats surface, shared between the sampler
/// thread feeding it and the connection threads answering
/// `FleetStatsQuery` from it.
pub(crate) struct ServerTelemetry {
    /// This daemon's listen address — the digest `origin` key.
    pub address: String,
    /// The ring of per-tick snapshot deltas.
    pub series: netsolve_obs::WindowedSeries,
    /// Whether `FleetStatsQuery` is answered (off = unsupported Error,
    /// matching a pre-v6 daemon, for compat tests and overhead ablation).
    pub enabled: bool,
}

impl ServerTelemetry {
    /// This daemon's digest over its full retained window.
    pub fn digest(&self) -> netsolve_obs::StatsDigest {
        let cfg = self.series.config();
        self.series.digest(&self.address, "server", cfg.tick_secs * cfg.slots as f64)
    }
}

/// Handle to a running server daemon.
pub struct ServerDaemon {
    address: String,
    server_id: u64,
    active: Arc<AtomicU32>,
    stop: Arc<AtomicBool>,
    threads: Vec<std::thread::JoinHandle<()>>,
    transport: Arc<dyn Transport>,
    requests_served: Arc<AtomicU64>,
    telemetry: Arc<ServerTelemetry>,
}

impl ServerDaemon {
    /// Start a server: bind a listener, register with the agent at
    /// `agent_address`, then serve until stopped.
    pub fn start(
        transport: Arc<dyn Transport>,
        agent_address: &str,
        core: ServerCore,
        config: ServerConfig,
    ) -> Result<ServerDaemon> {
        let listener = transport.listen(&config.listen_hint)?;
        let address = listener.address();

        // Register with the agent.
        let descriptor = ServerDescriptor {
            server_id: 0,
            host: config.host.clone(),
            address: address.clone(),
            mflops: config.mflops,
            problems: core.problems().names(),
            pdl_source: core
                .problems()
                .list()
                .iter()
                .map(|spec| netsolve_pdl::render(spec))
                .collect::<Vec<_>>()
                .join("\n"),
        };
        let mut agent_conn = transport.connect(agent_address)?;
        let reply = call(
            agent_conn.as_mut(),
            &Message::RegisterServer(descriptor),
            Duration::from_secs(10),
        )?;
        let server_id = match reply {
            Message::RegisterAck { accepted: true, detail } => {
                detail.parse::<u64>().map_err(|_| {
                    NetSolveError::Registration(format!("agent returned bad id '{detail}'"))
                })?
            }
            Message::RegisterAck { accepted: false, detail } => {
                return Err(NetSolveError::Registration(detail))
            }
            other => {
                return Err(NetSolveError::Protocol(format!(
                    "unexpected registration reply {}",
                    other.name()
                )))
            }
        };

        // Admission: install the policy into the core (unless the caller
        // pre-wired one via `ServerCore::with_admission` — benches and
        // tests do, to share the policy object with a simulation), then
        // build the solve-slot gate around it.
        let mut core = core;
        if core.admission().is_none() {
            if let Some(cfg) = &config.admission {
                core = core.with_admission(Arc::new(AdmissionPolicy::new(cfg.clone())));
            }
        }
        let gate = core
            .admission()
            .map(|policy| Arc::new(AdmissionGate::new(Arc::clone(policy), config.capacity)));

        let core = Arc::new(core);
        let active = Arc::new(AtomicU32::new(0));
        let stop = Arc::new(AtomicBool::new(false));
        let requests_served = Arc::new(AtomicU64::new(0));
        let telemetry = Arc::new(ServerTelemetry {
            address: address.clone(),
            series: netsolve_obs::WindowedSeries::new(netsolve_obs::SeriesConfig {
                tick_secs: config.telemetry.tick_secs,
                slots: config.telemetry.window_slots,
            }),
            enabled: config.telemetry.digests,
        });
        let mut threads = Vec::new();

        // Accept loop.
        {
            let core = Arc::clone(&core);
            let active = Arc::clone(&active);
            let stop = Arc::clone(&stop);
            let served = Arc::clone(&requests_served);
            let telemetry_for_accept = Arc::clone(&telemetry);
            let metrics = core.metrics();
            let tracer = core.tracer();
            let max_conns = config.max_connections.max(1);
            let live_conns = Arc::new(AtomicU32::new(0));
            threads.push(
                std::thread::Builder::new()
                    .name(format!("server-accept-{server_id}"))
                    .spawn(move || loop {
                        if stop.load(Ordering::Acquire) {
                            break;
                        }
                        match listener.accept() {
                            Ok(mut conn) => {
                                if stop.load(Ordering::Acquire) {
                                    break;
                                }
                                metrics.counter("server.accepts").inc();
                                // Traceless: no request context exists yet
                                // at accept time (stitching skips trace 0).
                                tracer.point(
                                    netsolve_obs::SpanContext::NONE,
                                    "server",
                                    "accept",
                                    String::new(),
                                );
                                // Admission control. The protocol is strictly
                                // client-sends-then-recvs, so an unsolicited
                                // Busy error is the first frame a rejected
                                // client's recv sees.
                                let in_flight = live_conns.fetch_add(1, Ordering::AcqRel);
                                if in_flight >= max_conns {
                                    live_conns.fetch_sub(1, Ordering::AcqRel);
                                    metrics.counter("server.busy_rejected").inc();
                                    let _ = conn.send(&Message::from_error(
                                        &NetSolveError::Resource(format!(
                                            "server busy: {max_conns} connection(s) already open"
                                        )),
                                    ));
                                    continue;
                                }
                                let core = Arc::clone(&core);
                                let active = Arc::clone(&active);
                                let served = Arc::clone(&served);
                                let conns = Arc::clone(&live_conns);
                                let gate = gate.clone();
                                let telemetry = Arc::clone(&telemetry_for_accept);
                                // Park the connection where a failed spawn
                                // can still reach it to answer Busy.
                                let slot = Arc::new(Mutex::new(Some(conn)));
                                let thread_slot = Arc::clone(&slot);
                                let spawned = std::thread::Builder::new()
                                    .name("server-conn".into())
                                    .spawn(move || {
                                        if let Some(conn) = thread_slot.lock().take() {
                                            serve_connection(
                                                conn, core, active, served, gate, telemetry,
                                            );
                                        }
                                        conns.fetch_sub(1, Ordering::AcqRel);
                                    });
                                if spawned.is_err() {
                                    // Out of threads: degrade by shedding
                                    // this connection, never by panicking
                                    // the accept loop.
                                    live_conns.fetch_sub(1, Ordering::AcqRel);
                                    metrics.counter("server.spawn_failures").inc();
                                    if let Some(mut conn) = slot.lock().take() {
                                        let _ = conn.send(&Message::from_error(
                                            &NetSolveError::Resource(
                                                "server busy: cannot spawn connection thread"
                                                    .into(),
                                            ),
                                        ));
                                    }
                                }
                            }
                            Err(_) => {
                                if stop.load(Ordering::Acquire) {
                                    break;
                                }
                            }
                        }
                    })
                    .expect("spawn server accept thread"),
            );
        }

        // Workload reporter: periodic, threshold-suppressed.
        {
            let stop = Arc::clone(&stop);
            let active = Arc::clone(&active);
            let policy = config.workload;
            let capacity = config.capacity.max(1);
            let transport_for_reports = Arc::clone(&transport);
            let agent_address = agent_address.to_string();
            threads.push(
                std::thread::Builder::new()
                    .name(format!("server-workload-{server_id}"))
                    .spawn(move || {
                        let mut last_sent: Option<f64> = None;
                        let mut conn: Option<Box<dyn Connection>> = None;
                        // Report promptly in tests: poll at a fraction of the
                        // configured interval, send on schedule/threshold.
                        let tick = Duration::from_secs_f64(
                            (policy.report_interval_secs / 10.0).clamp(0.005, 1.0),
                        );
                        let mut since_report = Duration::ZERO;
                        loop {
                            if stop.load(Ordering::Acquire) {
                                return;
                            }
                            std::thread::sleep(tick);
                            since_report += tick;
                            let workload =
                                active.load(Ordering::Acquire) as f64 * 100.0 / capacity as f64;
                            let due = since_report.as_secs_f64() >= policy.report_interval_secs;
                            let worth_it =
                                should_send(last_sent, workload, &policy);
                            if due && worth_it {
                                if conn.is_none() {
                                    conn = transport_for_reports.connect(&agent_address).ok();
                                }
                                if let Some(c) = conn.as_mut() {
                                    let msg = Message::WorkloadReport { server_id, workload };
                                    if c.send(&msg).is_ok()
                                        && c.recv_timeout(Duration::from_secs(5)).is_ok()
                                    {
                                        last_sent = Some(workload);
                                    } else {
                                        conn = None; // reconnect next time
                                    }
                                }
                                since_report = Duration::ZERO;
                            }
                        }
                    })
                    .expect("spawn workload reporter"),
            );
        }

        // Telemetry sampler: one registry snapshot per tick into the
        // windowed series. Off the request path entirely — connection
        // threads only read the series when asked via `FleetStatsQuery`.
        {
            let stop = Arc::clone(&stop);
            let telemetry = Arc::clone(&telemetry);
            let metrics = core.metrics();
            let tick =
                Duration::from_secs_f64(config.telemetry.tick_secs.clamp(0.005, 60.0));
            threads.push(
                std::thread::Builder::new()
                    .name(format!("server-sampler-{server_id}"))
                    .spawn(move || {
                        // Seed the series baseline at startup so events
                        // that land before the first tick show up in the
                        // first delta slot instead of vanishing into it.
                        telemetry
                            .series
                            .record(metrics.snapshot("server"), netsolve_obs::unix_now_secs());
                        loop {
                            if stop.load(Ordering::Acquire) {
                                return;
                            }
                            std::thread::sleep(tick);
                            telemetry.series.record(
                                metrics.snapshot("server"),
                                netsolve_obs::unix_now_secs(),
                            );
                        }
                    })
                    .expect("spawn telemetry sampler"),
            );
        }

        Ok(ServerDaemon {
            address,
            server_id,
            active,
            stop,
            threads,
            transport,
            requests_served,
            telemetry,
        })
    }

    /// Address clients dial.
    pub fn address(&self) -> &str {
        &self.address
    }

    /// The agent-assigned server id.
    pub fn server_id(&self) -> u64 {
        self.server_id
    }

    /// Requests currently executing.
    pub fn active_requests(&self) -> u32 {
        self.active.load(Ordering::Acquire)
    }

    /// Requests completed over the daemon's lifetime.
    pub fn requests_served(&self) -> u64 {
        self.requests_served.load(Ordering::Acquire)
    }

    /// The daemon's windowed time series (fed by its sampler thread).
    pub fn series(&self) -> &netsolve_obs::WindowedSeries {
        &self.telemetry.series
    }

    /// The daemon's current stats digest over its full retained window.
    pub fn stats_digest(&self) -> netsolve_obs::StatsDigest {
        self.telemetry.digest()
    }

    /// Stop all daemon threads.
    pub fn stop(&mut self) {
        if self.stop.swap(true, Ordering::AcqRel) {
            return;
        }
        self.transport.unblock(&self.address); // wake the accept loop
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for ServerDaemon {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Threshold decision, re-exported logic from the agent's workload module
/// semantics (kept local so the server crate does not depend on the agent).
fn should_send(last_sent: Option<f64>, measured: f64, policy: &WorkloadPolicy) -> bool {
    match last_sent {
        None => true,
        Some(prev) => (measured - prev).abs() >= policy.report_threshold,
    }
}

/// Run one request through the admission gate. Returns the shed reply to
/// send, or `None` when the request was admitted and now holds a solve
/// slot (which the caller must release).
fn gate_admit(
    gate: &AdmissionGate,
    metrics: &netsolve_obs::MetricsRegistry,
    tracer: &netsolve_obs::Tracer,
    ctx: netsolve_obs::SpanContext,
    msg: &Message,
    received_at: Instant,
) -> Option<Message> {
    let (request_id, problem, deadline_ms) = match msg {
        Message::RequestSubmit { request_id, problem, deadline_ms, .. } => {
            (*request_id, problem.as_str(), *deadline_ms)
        }
        _ => return None, // only solves are gated; queries always answer
    };
    let depth = gate.depth();
    let remaining =
        (deadline_ms > 0).then(|| deadline_ms.saturating_sub(received_at.elapsed().as_millis() as u64));
    match gate.policy.admit(problem, depth, remaining) {
        AdmissionDecision::Admit => match gate.acquire(received_at, deadline_ms) {
            SlotOutcome::Acquired => None,
            SlotOutcome::ExpiredInQueue => {
                // Counted distinctly from the core's execution-time
                // `server.deadline_shed`: this budget died *waiting*,
                // before any solve slot was reserved.
                metrics.counter("server.queue_deadline_shed").inc();
                tracer.point(ctx, "server", "queue_deadline_shed", format!("budget={deadline_ms}ms"));
                Some(Message::from_error(&NetSolveError::Timeout(format!(
                    "request {request_id} deadline ({deadline_ms} ms) expired while queued"
                ))))
            }
        },
        AdmissionDecision::Shed { reason, retry_after_ms } => {
            metrics.counter("server.admission_shed").inc();
            tracer.point(
                ctx,
                "server",
                "admission_shed",
                format!("reason={} depth={depth} hint={retry_after_ms}ms", reason.name()),
            );
            let err = match reason {
                // Budget already gone: a retry hint is meaningless, the
                // client's deadline path owns what happens next.
                ShedReason::DeadlineExpired => NetSolveError::Timeout(format!(
                    "request {request_id} deadline ({deadline_ms} ms) expired at admission"
                )),
                // Retryable Busy carrying the backoff hint.
                ShedReason::QueueFull | ShedReason::DeadlineUnmeetable => {
                    NetSolveError::Resource(format_busy_detail(reason, depth, retry_after_ms))
                }
            };
            Some(Message::from_error(&err))
        }
    }
}

fn serve_connection(
    mut conn: Box<dyn Connection>,
    core: Arc<ServerCore>,
    active: Arc<AtomicU32>,
    served: Arc<AtomicU64>,
    gate: Option<Arc<AdmissionGate>>,
    telemetry: Arc<ServerTelemetry>,
) {
    let metrics = core.metrics();
    let tracer = core.tracer();
    loop {
        let msg = match conn.recv() {
            Ok(m) => m,
            Err(_) => return,
        };
        let received_at = Instant::now();
        // Fleet telemetry is daemon state (the windowed series lives
        // beside the sampler thread, not in the core), so the daemon
        // answers `FleetStatsQuery` itself. A server knows only its own
        // digest; agents aggregate the fleet.
        if matches!(msg, Message::FleetStatsQuery) {
            let reply = if telemetry.enabled {
                Message::FleetStatsReply { digests: vec![telemetry.digest()] }
            } else {
                Message::from_error(&NetSolveError::Protocol(
                    "fleet stats disabled on this server".into(),
                ))
            };
            if conn.send(&reply).is_err() {
                return;
            }
            continue;
        }
        // Trace context rides in the request; decode happened inside
        // `conn.recv()` (the transport owns the frame parse), so the queue
        // span the core records starts here, at wire arrival.
        let request_ctx = match &msg {
            Message::RequestSubmit { request_id, trace_id, parent_span, .. } => {
                Some(netsolve_obs::SpanContext {
                    trace_id: *trace_id,
                    parent_span: *parent_span,
                    request_id: *request_id,
                })
            }
            _ => None,
        };
        let is_request = request_ctx.is_some();
        // Admission gate: shed (with a retryable Busy + retry hint) or
        // wait for a solve slot *before* the request counts as active.
        let mut slot_held = false;
        let shed_reply = match (&gate, request_ctx) {
            (Some(g), Some(ctx)) => {
                let r = gate_admit(g, &metrics, &tracer, ctx, &msg, received_at);
                slot_held = r.is_none();
                r
            }
            _ => None,
        };
        let reply = match shed_reply {
            Some(reply) => reply,
            None => {
                if is_request {
                    active.fetch_add(1, Ordering::AcqRel);
                    metrics.gauge("server.active_requests").inc();
                }
                let reply = core.handle_message_at(&msg, received_at);
                if slot_held {
                    gate.as_ref().expect("slot implies gate").release();
                }
                if is_request {
                    active.fetch_sub(1, Ordering::AcqRel);
                    metrics.gauge("server.active_requests").dec();
                    served.fetch_add(1, Ordering::AcqRel);
                    metrics
                        .histogram("server.request_handle_secs")
                        .record_secs(received_at.elapsed().as_secs_f64());
                }
                reply
            }
        };
        let send_start = std::time::Instant::now();
        let encode_timer = tracer.start();
        if conn.send(&reply).is_err() {
            return;
        }
        if let Some(ctx) = request_ctx {
            tracer.record(ctx, encode_timer, "server", "encode", String::new());
            metrics
                .histogram("server.reply_marshal_secs")
                .record_secs(send_start.elapsed().as_secs_f64());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsolve_agent::{AgentCore, AgentDaemon};
    use netsolve_core::matrix::Matrix;
    use netsolve_net::ChannelNetwork;
    use netsolve_proto::QueryShape;

    fn bring_up() -> (ChannelNetwork, AgentDaemon, ServerDaemon) {
        let net = ChannelNetwork::new();
        let transport: Arc<dyn Transport> = Arc::new(net.clone());
        let agent = AgentDaemon::start(
            Arc::clone(&transport),
            "agent",
            AgentCore::with_defaults(),
        )
        .unwrap();
        let server = ServerDaemon::start(
            Arc::clone(&transport),
            "agent",
            ServerCore::with_standard_catalogue(),
            ServerConfig::quick("host1", "srv1", 150.0),
        )
        .unwrap();
        (net, agent, server)
    }

    #[test]
    fn server_registers_and_serves() {
        let (net, mut agent, mut server) = bring_up();
        assert_eq!(server.server_id(), 1);

        // The agent should now offer it for dgesv.
        let mut conn = net.connect("agent").unwrap();
        let reply = call(
            conn.as_mut(),
            &Message::ServerQuery(QueryShape {
                client_host: 0,
                problem: "dgesv".into(),
                n: 10,
                bytes_in: 880,
                bytes_out: 88,
                trace_id: 0,
                parent_span: 0,
            }),
            Duration::from_secs(5),
        )
        .unwrap();
        let address = match reply {
            Message::ServerList { candidates } => {
                assert_eq!(candidates.len(), 1);
                candidates[0].address.clone()
            }
            other => panic!("unexpected {other:?}"),
        };
        assert_eq!(address, server.address());

        // Submit a real request to the server.
        let mut sconn = net.connect(&address).unwrap();
        let a = Matrix::identity(4);
        let b = vec![1.0, 2.0, 3.0, 4.0];
        let reply = call(
            sconn.as_mut(),
            &Message::RequestSubmit {
                request_id: 5,
                deadline_ms: 0,
                problem: "dgesv".into(),
                inputs: vec![a.into(), b.clone().into()],
                trace_id: 0,
                parent_span: 0,
            },
            Duration::from_secs(5),
        )
        .unwrap();
        match reply {
            Message::RequestReply { request_id, outputs, compute_secs, .. } => {
                assert_eq!(request_id, 5);
                assert_eq!(outputs[0].as_vector().unwrap(), b.as_slice());
                assert!(compute_secs >= 0.0);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(server.requests_served(), 1);

        server.stop();
        agent.stop();
    }

    #[test]
    fn registration_against_dead_agent_fails() {
        let net = ChannelNetwork::new();
        let transport: Arc<dyn Transport> = Arc::new(net);
        let r = ServerDaemon::start(
            transport,
            "no-agent-here",
            ServerCore::with_standard_catalogue(),
            ServerConfig::quick("h", "srv", 100.0),
        );
        assert!(matches!(r, Err(NetSolveError::ServerUnreachable(_))));
    }

    #[test]
    fn workload_reports_reach_agent() {
        let net = ChannelNetwork::new();
        let transport: Arc<dyn Transport> = Arc::new(net.clone());
        let agent = AgentDaemon::start(
            Arc::clone(&transport),
            "agent",
            AgentCore::with_defaults(),
        )
        .unwrap();
        let mut config = ServerConfig::quick("host1", "srv1", 150.0);
        config.workload.report_interval_secs = 0.05; // fast for the test
        config.workload.report_threshold = 0.0;
        let mut server = ServerDaemon::start(
            Arc::clone(&transport),
            "agent",
            ServerCore::with_standard_catalogue(),
            config,
        )
        .unwrap();

        // Wait for at least one report to land.
        let core = agent.core();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            {
                // Registration seeds a workload entry; a report refreshes
                // it. We simply verify queries keep working and the server
                // stays eligible (fresh workload), then stop.
                let mut c = core.lock();
                let q = QueryShape {
                    client_host: 0,
                    problem: "ddot".into(),
                    n: 4,
                    bytes_in: 100,
                    bytes_out: 8,
                    trace_id: 0,
                    parent_span: 0,
                };
                if c.query(&q, netsolve_core::SimTime::from_secs(1.0)).is_ok() {
                    break;
                }
            }
            assert!(std::time::Instant::now() < deadline, "no workload report arrived");
            std::thread::sleep(Duration::from_millis(20));
        }
        server.stop();
        drop(agent);
    }

    /// Driving a capacity-1 admission server past its queue bound must
    /// shed with a retryable Busy carrying a `retry_after_ms` hint,
    /// while everything admitted still solves.
    #[test]
    fn admission_gate_sheds_past_queue_bound() {
        use crate::core::ExecutionMode;
        use netsolve_pdl::ProblemRegistry;

        let net = ChannelNetwork::new();
        let transport: Arc<dyn Transport> = Arc::new(net.clone());
        let agent =
            AgentDaemon::start(Arc::clone(&transport), "agent", AgentCore::with_defaults())
                .unwrap();
        let mut config = ServerConfig::quick("host1", "srv1", 150.0);
        config.admission = Some(AdmissionConfig::with_max_queue(2));
        // ~64 ms synthetic solves (dgesv n=124 at 10 Mflop/s) so the
        // burst below genuinely overlaps in the solve queue.
        let core = ServerCore::new(
            ProblemRegistry::with_standard_catalogue(),
            ExecutionMode::Synthetic { mflops: 20.0 },
        );
        let mut server =
            ServerDaemon::start(Arc::clone(&transport), "agent", core, config).unwrap();
        let address = server.address().to_string();

        let burst = 8;
        let handles: Vec<_> = (0..burst)
            .map(|i| {
                let net = net.clone();
                let address = address.clone();
                std::thread::spawn(move || {
                    let mut conn = net.connect(&address).unwrap();
                    let a = Matrix::identity(124);
                    let b = vec![1.0; 124];
                    call(
                        conn.as_mut(),
                        &Message::RequestSubmit {
                            request_id: i,
                            deadline_ms: 0,
                            problem: "dgesv".into(),
                            inputs: vec![a.into(), b.into()],
                            trace_id: 0,
                            parent_span: 0,
                        },
                        Duration::from_secs(30),
                    )
                    .unwrap()
                })
            })
            .collect();
        let mut solved = 0;
        let mut shed = 0;
        for h in handles {
            match h.join().unwrap() {
                Message::RequestReply { .. } => solved += 1,
                Message::Error { code, detail } => {
                    assert_eq!(code, NetSolveError::Resource(String::new()).code(), "{detail}");
                    let err = NetSolveError::from_code(code, detail.clone());
                    assert!(err.is_retryable(), "shed must be retryable: {detail}");
                    assert!(
                        netsolve_core::admission::parse_retry_after_ms(&detail).is_some(),
                        "busy reply must carry a retry hint: {detail}"
                    );
                    shed += 1;
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        assert!(shed >= 1, "burst of {burst} never overflowed queue bound 2");
        assert!(solved >= 1, "admitted requests must still solve");
        assert_eq!(solved + shed, burst);
        server.stop();
        drop(agent);
    }

    /// A request whose deadline budget expires while it waits for a solve
    /// slot must be rejected *before* reserving the slot, counted under
    /// `server.queue_deadline_shed` (distinct from the core's
    /// execution-time `server.deadline_shed`).
    #[test]
    fn budget_expiring_in_queue_sheds_without_taking_a_slot() {
        use crate::core::ExecutionMode;
        use netsolve_pdl::ProblemRegistry;

        let net = ChannelNetwork::new();
        let transport: Arc<dyn Transport> = Arc::new(net.clone());
        let agent =
            AgentDaemon::start(Arc::clone(&transport), "agent", AgentCore::with_defaults())
                .unwrap();
        let mut config = ServerConfig::quick("host1", "srv1", 150.0);
        // Queue bound far above the test's two requests: only the
        // deadline path can shed here.
        config.admission = Some(AdmissionConfig::with_max_queue(64));
        let core = ServerCore::new(
            ProblemRegistry::with_standard_catalogue(),
            ExecutionMode::Synthetic { mflops: 20.0 },
        );
        let metrics = core.metrics();
        let mut server =
            ServerDaemon::start(Arc::clone(&transport), "agent", core, config).unwrap();
        let address = server.address().to_string();

        // Occupy the single solve slot with a ~250 ms solve (dgesv n=196).
        let blocker = {
            let net = net.clone();
            let address = address.clone();
            std::thread::spawn(move || {
                let mut conn = net.connect(&address).unwrap();
                let a = Matrix::identity(196);
                let b = vec![1.0; 196];
                call(
                    conn.as_mut(),
                    &Message::RequestSubmit {
                        request_id: 1,
                        deadline_ms: 0,
                        problem: "dgesv".into(),
                        inputs: vec![a.into(), b.into()],
                        trace_id: 0,
                        parent_span: 0,
                    },
                    Duration::from_secs(30),
                )
                .unwrap()
            })
        };
        // Wait until the blocker actually holds the solve slot.
        let wait_deadline = Instant::now() + Duration::from_secs(10);
        loop {
            let snap = metrics.snapshot("server");
            let busy = snap
                .gauges
                .iter()
                .any(|(name, v)| name == "server.active_requests" && *v >= 1);
            if busy {
                break;
            }
            assert!(Instant::now() < wait_deadline, "blocker never started solving");
            std::thread::sleep(Duration::from_millis(5));
        }
        let mut conn = net.connect(&address).unwrap();
        let reply = call(
            conn.as_mut(),
            &Message::RequestSubmit {
                request_id: 2,
                deadline_ms: 40, // much shorter than the blocker's solve
                problem: "ddot".into(),
                inputs: vec![vec![1.0].into(), vec![1.0].into()],
                trace_id: 0,
                parent_span: 0,
            },
            Duration::from_secs(30),
        )
        .unwrap();
        match reply {
            Message::Error { code, detail } => {
                assert_eq!(code, NetSolveError::Timeout(String::new()).code(), "{detail}");
                assert!(detail.contains("expired while queued"), "detail: {detail}");
            }
            other => panic!("expected queued-deadline shed, got {other:?}"),
        }
        assert!(matches!(blocker.join().unwrap(), Message::RequestReply { .. }));
        let snap = metrics.snapshot("server");
        let queue_sheds = snap
            .counters
            .iter()
            .find(|(name, _)| name == "server.queue_deadline_shed")
            .map(|(_, v)| *v)
            .unwrap_or(0);
        assert_eq!(queue_sheds, 1, "expired-in-queue shed must have its own counter");
        assert!(
            !snap.counters.iter().any(|(n, v)| n == "server.deadline_shed" && *v > 0),
            "shed must not be double-counted as an execution-time shed"
        );
        server.stop();
        drop(agent);
    }

    #[test]
    fn should_send_threshold_logic() {
        let p = WorkloadPolicy { report_threshold: 10.0, ..WorkloadPolicy::default() };
        assert!(should_send(None, 0.0, &p));
        assert!(!should_send(Some(50.0), 51.0, &p));
        assert!(should_send(Some(50.0), 65.0, &p));
    }
}
