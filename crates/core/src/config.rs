//! System-wide tunables, mirroring the knobs the original NetSolve exposed
//! for workload management and fault tolerance.

/// How servers report workload and how long the agent trusts those reports.
///
/// NetSolve servers broadcast their workload periodically, but only when the
/// change since the last broadcast exceeds a threshold (to keep agent
/// traffic low); the agent then *ages* each report with a time-to-live so a
/// silent (possibly overloaded or dead) server does not keep a stale rosy
/// number forever. Experiment R4 sweeps these knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadPolicy {
    /// Seconds between a server's workload self-measurements.
    pub report_interval_secs: f64,
    /// Minimum workload change (percentage points) that triggers a report.
    pub report_threshold: f64,
    /// Seconds after which an unrefreshed report is considered stale.
    pub ttl_secs: f64,
    /// Workload assumed for a server whose report has gone stale; pessimistic
    /// so the balancer deprioritizes silent servers.
    pub stale_workload: f64,
}

impl Default for WorkloadPolicy {
    fn default() -> Self {
        // NetSolve's documented defaults were on the order of minutes; we
        // default to tens of seconds so live demos react visibly.
        WorkloadPolicy {
            report_interval_secs: 30.0,
            report_threshold: 10.0,
            ttl_secs: 120.0,
            stale_workload: 100.0,
        }
    }
}

/// Client-side fault-tolerance knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Maximum servers to try for one request (1 = no failover).
    pub max_attempts: usize,
    /// Per-attempt timeout in seconds.
    pub attempt_timeout_secs: f64,
    /// Whether to report failures back to the agent (lets the agent mark
    /// the server down for everyone).
    pub report_failures: bool,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            attempt_timeout_secs: 30.0,
            report_failures: true,
        }
    }
}

/// Agent-side fault-tracking knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPolicy {
    /// Consecutive failures before a server is marked down.
    pub failures_to_mark_down: u32,
    /// Seconds a down server stays excluded before being probed again.
    pub down_cooldown_secs: f64,
}

impl Default for FaultPolicy {
    fn default() -> Self {
        FaultPolicy {
            failures_to_mark_down: 2,
            down_cooldown_secs: 60.0,
        }
    }
}

/// Everything configurable about one agent.
#[derive(Debug, Clone)]
pub struct AgentConfig {
    /// Workload reporting/aging policy.
    pub workload: WorkloadPolicy,
    /// Fault tracking policy.
    pub fault: FaultPolicy,
    /// How many ranked servers to return per query (NetSolve returned a
    /// short ordered candidate list for client-side failover).
    pub candidates_returned: CandidateCount,
    /// Whether the agent counts its own unconfirmed assignments against a
    /// server's workload (the herd-effect defence). Disabling reproduces
    /// the naive report-only broker for the R4 ablation.
    pub pending_tracking: bool,
}

impl Default for AgentConfig {
    fn default() -> Self {
        AgentConfig {
            workload: WorkloadPolicy::default(),
            fault: FaultPolicy::default(),
            candidates_returned: CandidateCount::default(),
            pending_tracking: true,
        }
    }
}

/// Number of ranked candidates returned to clients.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CandidateCount(pub usize);

impl Default for CandidateCount {
    fn default() -> Self {
        CandidateCount(5)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let w = WorkloadPolicy::default();
        assert!(w.report_interval_secs > 0.0);
        assert!(w.ttl_secs >= w.report_interval_secs);
        assert!(w.stale_workload >= 0.0);

        let r = RetryPolicy::default();
        assert!(r.max_attempts >= 1);
        assert!(r.attempt_timeout_secs > 0.0);
        assert!(r.report_failures);

        let f = FaultPolicy::default();
        assert!(f.failures_to_mark_down >= 1);

        let a = AgentConfig::default();
        assert!(a.candidates_returned.0 >= 1);
        assert!(a.pending_tracking, "pending tracking on by default");
    }
}
