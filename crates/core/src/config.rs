//! System-wide tunables, mirroring the knobs the original NetSolve exposed
//! for workload management and fault tolerance.

/// How servers report workload and how long the agent trusts those reports.
///
/// NetSolve servers broadcast their workload periodically, but only when the
/// change since the last broadcast exceeds a threshold (to keep agent
/// traffic low); the agent then *ages* each report with a time-to-live so a
/// silent (possibly overloaded or dead) server does not keep a stale rosy
/// number forever. Experiment R4 sweeps these knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadPolicy {
    /// Seconds between a server's workload self-measurements.
    pub report_interval_secs: f64,
    /// Minimum workload change (percentage points) that triggers a report.
    pub report_threshold: f64,
    /// Seconds after which an unrefreshed report is considered stale.
    pub ttl_secs: f64,
    /// Workload assumed for a server whose report has gone stale; pessimistic
    /// so the balancer deprioritizes silent servers.
    pub stale_workload: f64,
}

impl Default for WorkloadPolicy {
    fn default() -> Self {
        // NetSolve's documented defaults were on the order of minutes; we
        // default to tens of seconds so live demos react visibly.
        WorkloadPolicy {
            report_interval_secs: 30.0,
            report_threshold: 10.0,
            ttl_secs: 120.0,
            stale_workload: 100.0,
        }
    }
}

/// Delay schedule applied between failover attempts.
///
/// Retrying instantly after a failure tends to re-hit the same transient
/// fault (and, fleet-wide, synchronizes retries into load spikes); an
/// exponential schedule with full jitter is the standard cure. The R5
/// fault-tolerance experiment sweeps these variants.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Backoff {
    /// Retry immediately.
    None,
    /// Constant delay before every retry.
    Fixed {
        /// Seconds to wait before each retry.
        delay_secs: f64,
    },
    /// Exponential backoff with full jitter: retry `k` waits a uniform
    /// random time in `[0, min(cap, base * 2^k))`.
    ExponentialJitter {
        /// Upper bound of the first retry's wait, seconds.
        base_secs: f64,
        /// Ceiling on the exponential growth, seconds.
        cap_secs: f64,
    },
}

impl Backoff {
    /// Seconds to wait before retry number `retry` (0 = the wait preceding
    /// the second attempt). `jitter` must be a uniform sample in `[0, 1)`;
    /// deterministic schedules ignore it.
    pub fn delay_secs(&self, retry: u32, jitter: f64) -> f64 {
        match self {
            Backoff::None => 0.0,
            Backoff::Fixed { delay_secs } => *delay_secs,
            Backoff::ExponentialJitter { base_secs, cap_secs } => {
                // Clamp the exponent so huge retry counts cannot overflow
                // to infinity before the cap applies.
                let ceiling = (base_secs * 2f64.powi(retry.min(62) as i32)).min(*cap_secs);
                ceiling * jitter
            }
        }
    }
}

/// Client-side fault-tolerance knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Maximum servers to try for one request (1 = no failover).
    pub max_attempts: usize,
    /// Per-attempt timeout in seconds.
    pub attempt_timeout_secs: f64,
    /// Delay schedule between failover attempts.
    pub backoff: Backoff,
    /// End-to-end budget for one `netsl` call in seconds, spanning every
    /// attempt and backoff wait; `0.0` means unlimited. The remaining
    /// budget travels with the request so servers can shed work whose
    /// deadline already passed.
    pub deadline_secs: f64,
    /// Whether to report failures back to the agent (lets the agent mark
    /// the server down for everyone).
    pub report_failures: bool,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            attempt_timeout_secs: 30.0,
            backoff: Backoff::ExponentialJitter { base_secs: 0.05, cap_secs: 2.0 },
            deadline_secs: 0.0,
            report_failures: true,
        }
    }
}

/// Agent-side fault-tracking knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPolicy {
    /// Consecutive failures before a server is marked down.
    pub failures_to_mark_down: u32,
    /// Seconds a down server stays excluded before being probed again.
    pub down_cooldown_secs: f64,
}

impl Default for FaultPolicy {
    fn default() -> Self {
        FaultPolicy {
            failures_to_mark_down: 2,
            down_cooldown_secs: 60.0,
        }
    }
}

/// Agent-side liveness probing (heartbeat) knobs.
///
/// The agent daemon periodically dials each registered server with a
/// `Ping` and expects a `Pong` within `probe_timeout_secs`. A server
/// that misses `miss_threshold` consecutive probes is force-marked down
/// in the fault tracker; a successful probe (including the half-open
/// probe after cooldown) re-admits it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HeartbeatPolicy {
    /// Seconds between probe rounds.
    pub probe_interval_secs: f64,
    /// Consecutive missed probes before the server is marked down.
    pub miss_threshold: u32,
    /// Seconds to wait for a `Pong` before counting the probe as missed.
    pub probe_timeout_secs: f64,
}

impl Default for HeartbeatPolicy {
    fn default() -> Self {
        HeartbeatPolicy {
            probe_interval_secs: 15.0,
            miss_threshold: 2,
            probe_timeout_secs: 2.0,
        }
    }
}

/// Agent federation (gossip replication) knobs.
///
/// Federated agents push their full registration view to each peer every
/// `interval_secs` (anti-entropy). Entries learned from gossip carry a
/// freshness timestamp; one that has not been re-confirmed within
/// `entry_ttl_secs` is expired, so a dead peer's servers age out of every
/// surviving agent's registry instead of lingering as ghosts. A peer that
/// misses `peer_miss_threshold` consecutive rounds is marked down (gauge
/// `agent.peers_up` drops) and keeps being re-probed each round, so a
/// restarted peer rejoins on its first answered sync.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GossipPolicy {
    /// Seconds between gossip rounds.
    pub interval_secs: f64,
    /// Seconds a gossip-learned registration stays valid without being
    /// re-confirmed by another round mentioning it fresher.
    pub entry_ttl_secs: f64,
    /// Consecutive unanswered rounds before a peer is marked down.
    pub peer_miss_threshold: u32,
    /// Seconds to wait for a peer's `GossipAck`.
    pub round_timeout_secs: f64,
}

impl Default for GossipPolicy {
    fn default() -> Self {
        GossipPolicy {
            interval_secs: 10.0,
            entry_ttl_secs: 60.0,
            peer_miss_threshold: 2,
            round_timeout_secs: 2.0,
        }
    }
}

/// Daemon-side telemetry sampling knobs.
///
/// Every daemon runs a sampler thread that snapshots its metrics
/// registry each `tick_secs` into a windowed series of deltas
/// (`window_slots` ticks deep), from which rates and rolling
/// percentiles are answered. Agents additionally fold the fleet's
/// windowed digests into their gossip rounds when `digests` is on, so
/// one scrape of any agent returns every peer's recent history.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TelemetryPolicy {
    /// Seconds between registry samples.
    pub tick_secs: f64,
    /// How many ticks of history the windowed series retains.
    pub window_slots: usize,
    /// Whether stats digests ride along on gossip and answer
    /// `FleetStatsQuery`.
    pub digests: bool,
}

impl Default for TelemetryPolicy {
    /// 1 s × 120 slots — two minutes of per-second history.
    fn default() -> Self {
        TelemetryPolicy { tick_secs: 1.0, window_slots: 120, digests: true }
    }
}

/// Everything configurable about one agent.
#[derive(Debug, Clone)]
pub struct AgentConfig {
    /// Workload reporting/aging policy.
    pub workload: WorkloadPolicy,
    /// Fault tracking policy.
    pub fault: FaultPolicy,
    /// Federation gossip policy.
    pub gossip: GossipPolicy,
    /// How many ranked servers to return per query (NetSolve returned a
    /// short ordered candidate list for client-side failover).
    pub candidates_returned: CandidateCount,
    /// Whether the agent counts its own unconfirmed assignments against a
    /// server's workload (the herd-effect defence). Disabling reproduces
    /// the naive report-only broker for the R4 ablation.
    pub pending_tracking: bool,
    /// Telemetry sampling and digest replication policy.
    pub telemetry: TelemetryPolicy,
}

impl Default for AgentConfig {
    fn default() -> Self {
        AgentConfig {
            workload: WorkloadPolicy::default(),
            fault: FaultPolicy::default(),
            gossip: GossipPolicy::default(),
            candidates_returned: CandidateCount::default(),
            pending_tracking: true,
            telemetry: TelemetryPolicy::default(),
        }
    }
}

/// Number of ranked candidates returned to clients.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CandidateCount(pub usize);

impl Default for CandidateCount {
    fn default() -> Self {
        CandidateCount(5)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let w = WorkloadPolicy::default();
        assert!(w.report_interval_secs > 0.0);
        assert!(w.ttl_secs >= w.report_interval_secs);
        assert!(w.stale_workload >= 0.0);

        let r = RetryPolicy::default();
        assert!(r.max_attempts >= 1);
        assert!(r.attempt_timeout_secs > 0.0);
        assert!(r.report_failures);
        assert_eq!(r.deadline_secs, 0.0, "no deadline unless asked");
        assert!(matches!(r.backoff, Backoff::ExponentialJitter { .. }));

        let f = FaultPolicy::default();
        assert!(f.failures_to_mark_down >= 1);

        let h = HeartbeatPolicy::default();
        assert!(h.probe_interval_secs > 0.0);
        assert!(h.miss_threshold >= 1);
        assert!(h.probe_timeout_secs > 0.0);

        let g = GossipPolicy::default();
        assert!(g.interval_secs > 0.0);
        assert!(
            g.entry_ttl_secs > g.interval_secs,
            "a live peer must be able to refresh entries before they expire"
        );
        assert!(g.peer_miss_threshold >= 1);
        assert!(g.round_timeout_secs > 0.0);

        let a = AgentConfig::default();
        assert!(a.candidates_returned.0 >= 1);
        assert!(a.pending_tracking, "pending tracking on by default");
    }

    #[test]
    fn backoff_schedules() {
        assert_eq!(Backoff::None.delay_secs(0, 0.5), 0.0);
        assert_eq!(Backoff::None.delay_secs(9, 0.5), 0.0);

        let fixed = Backoff::Fixed { delay_secs: 0.25 };
        assert_eq!(fixed.delay_secs(0, 0.0), 0.25);
        assert_eq!(fixed.delay_secs(5, 0.9), 0.25);

        let exp = Backoff::ExponentialJitter { base_secs: 0.1, cap_secs: 1.0 };
        // Full jitter: the sample scales the growing ceiling.
        assert_eq!(exp.delay_secs(0, 0.5), 0.05);
        assert_eq!(exp.delay_secs(1, 0.5), 0.1);
        assert_eq!(exp.delay_secs(2, 0.5), 0.2);
        // Ceiling saturates at the cap and never overflows.
        assert_eq!(exp.delay_secs(10, 1.0), 1.0);
        let huge = exp.delay_secs(u32::MAX, 0.999);
        assert!(huge.is_finite() && huge <= 1.0);
    }
}
