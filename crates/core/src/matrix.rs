//! Dense column-major matrix, the fundamental data object exchanged between
//! NetSolve clients and servers.
//!
//! Column-major layout matches the Fortran convention of the numerical
//! libraries NetSolve wrapped (LAPACK), so the solver substrate in
//! `netsolve-solvers` can iterate columns contiguously.

use crate::error::{NetSolveError, Result};
use crate::rng::Rng64;

/// Dense `rows x cols` matrix of `f64`, column-major storage.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    /// `data[c * rows + r]` is element `(r, c)`.
    data: Vec<f64>,
}

impl Matrix {
    /// Zero matrix of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Identity matrix of order `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Build from a generator called as `f(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for c in 0..cols {
            for r in 0..rows {
                data.push(f(r, c));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Construct from row-major data (the natural literal order in source
    /// code). Errors if the element count does not match the shape.
    pub fn from_rows(rows: usize, cols: usize, row_major: &[f64]) -> Result<Self> {
        if row_major.len() != rows * cols {
            return Err(NetSolveError::BadArguments(format!(
                "matrix literal has {} elements, expected {}x{}={}",
                row_major.len(),
                rows,
                cols,
                rows * cols
            )));
        }
        Ok(Matrix::from_fn(rows, cols, |r, c| row_major[r * cols + c]))
    }

    /// Construct directly from column-major storage. Errors on length
    /// mismatch.
    pub fn from_col_major(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(NetSolveError::BadArguments(format!(
                "column-major data has {} elements, expected {}",
                data.len(),
                rows * cols
            )));
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Random matrix with entries uniform in `[-1, 1)`, seeded.
    pub fn random(rows: usize, cols: usize, rng: &mut Rng64) -> Self {
        Matrix::from_fn(rows, cols, |_, _| rng.uniform(-1.0, 1.0))
    }

    /// Random diagonally-dominant matrix: well-conditioned, so every dense
    /// solver in the test-suite succeeds on it.
    pub fn random_diag_dominant(n: usize, rng: &mut Rng64) -> Self {
        let mut m = Matrix::random(n, n, rng);
        for i in 0..n {
            let off: f64 = (0..n).filter(|&j| j != i).map(|j| m[(i, j)].abs()).sum();
            m[(i, i)] = off + 1.0 + rng.next_f64();
        }
        m
    }

    /// Random symmetric positive-definite matrix (`A = B^T B + n·I`).
    pub fn random_spd(n: usize, rng: &mut Rng64) -> Self {
        let b = Matrix::random(n, n, rng);
        let mut a = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                let mut s = 0.0;
                for k in 0..n {
                    s += b[(k, i)] * b[(k, j)];
                }
                a[(i, j)] = s;
            }
            a[(i, i)] += n as f64;
        }
        a
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// True for `n x n` matrices.
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Total element count.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the matrix has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Borrow the column-major storage.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutably borrow the column-major storage.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consume into column-major storage.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Borrow column `c` as a contiguous slice.
    pub fn col(&self, c: usize) -> &[f64] {
        assert!(c < self.cols, "column {c} out of range");
        &self.data[c * self.rows..(c + 1) * self.rows]
    }

    /// Mutably borrow column `c`.
    pub fn col_mut(&mut self, c: usize) -> &mut [f64] {
        assert!(c < self.cols, "column {c} out of range");
        &mut self.data[c * self.rows..(c + 1) * self.rows]
    }

    /// Copy row `r` into a new vector (rows are strided in column-major).
    pub fn row(&self, r: usize) -> Vec<f64> {
        assert!(r < self.rows, "row {r} out of range");
        (0..self.cols).map(|c| self[(r, c)]).collect()
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.rows, |r, c| self[(c, r)])
    }

    /// Swap rows `a` and `b` in place (used by partial pivoting).
    pub fn swap_rows(&mut self, a: usize, b: usize) {
        assert!(a < self.rows && b < self.rows, "row index out of range");
        if a == b {
            return;
        }
        for c in 0..self.cols {
            self.data.swap(c * self.rows + a, c * self.rows + b);
        }
    }

    /// Matrix–vector product `A x`.
    pub fn matvec(&self, x: &[f64]) -> Result<Vec<f64>> {
        if x.len() != self.cols {
            return Err(NetSolveError::BadArguments(format!(
                "matvec: vector length {} does not match cols {}",
                x.len(),
                self.cols
            )));
        }
        let mut y = vec![0.0; self.rows];
        for (c, &xc) in x.iter().enumerate() {
            let col = self.col(c);
            for (yr, cr) in y.iter_mut().zip(col) {
                *yr += cr * xc;
            }
        }
        Ok(y)
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Max-abs elementwise difference; +inf on shape mismatch.
    pub fn max_abs_diff(&self, other: &Matrix) -> f64 {
        if self.rows != other.rows || self.cols != other.cols {
            return f64::INFINITY;
        }
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }

    /// Elementwise approximate equality within `tol`.
    pub fn approx_eq(&self, other: &Matrix, tol: f64) -> bool {
        self.max_abs_diff(other) <= tol
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        debug_assert!(r < self.rows && c < self.cols, "index ({r},{c}) out of range");
        &self.data[c * self.rows + r]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        debug_assert!(r < self.rows && c < self.cols, "index ({r},{c}) out of range");
        &mut self.data[c * self.rows + r]
    }
}

impl std::fmt::Display for Matrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "[{}x{}]", self.rows, self.cols)?;
        let max_show = 8;
        for r in 0..self.rows.min(max_show) {
            for c in 0..self.cols.min(max_show) {
                write!(f, "{:>12.5} ", self[(r, c)])?;
            }
            if self.cols > max_show {
                write!(f, "...")?;
            }
            writeln!(f)?;
        }
        if self.rows > max_show {
            writeln!(f, "...")?;
        }
        Ok(())
    }
}

/// Euclidean norm of a vector.
pub fn vec_norm2(x: &[f64]) -> f64 {
    x.iter().map(|v| v * v).sum::<f64>().sqrt()
}

/// Max-abs elementwise difference of two equal-length vectors; +inf on
/// length mismatch.
pub fn vec_max_abs_diff(a: &[f64], b: &[f64]) -> f64 {
    if a.len() != b.len() {
        return f64::INFINITY;
    }
    a.iter().zip(b).map(|(x, y)| (x - y).abs()).fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_identity_shapes() {
        let z = Matrix::zeros(2, 3);
        assert_eq!((z.rows(), z.cols(), z.len()), (2, 3, 6));
        assert!(z.as_slice().iter().all(|&v| v == 0.0));
        let i = Matrix::identity(3);
        assert!(i.is_square());
        assert_eq!(i[(0, 0)], 1.0);
        assert_eq!(i[(0, 1)], 0.0);
    }

    #[test]
    fn from_rows_orders_elements_row_major() {
        let m = Matrix::from_rows(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        assert_eq!(m[(0, 0)], 1.0);
        assert_eq!(m[(0, 2)], 3.0);
        assert_eq!(m[(1, 0)], 4.0);
        assert_eq!(m[(1, 2)], 6.0);
        // column-major storage: col 0 is [1,4]
        assert_eq!(m.col(0), &[1.0, 4.0]);
        assert_eq!(m.row(1), vec![4.0, 5.0, 6.0]);
    }

    #[test]
    fn from_rows_rejects_bad_length() {
        assert!(Matrix::from_rows(2, 2, &[1.0, 2.0, 3.0]).is_err());
        assert!(Matrix::from_col_major(2, 2, vec![0.0; 3]).is_err());
    }

    #[test]
    fn transpose_involution() {
        let mut rng = Rng64::new(3);
        let m = Matrix::random(4, 7, &mut rng);
        let t = m.transpose();
        assert_eq!((t.rows(), t.cols()), (7, 4));
        assert_eq!(t[(2, 3)], m[(3, 2)]);
        assert!(t.transpose().approx_eq(&m, 0.0));
    }

    #[test]
    fn swap_rows_swaps_every_column() {
        let mut m = Matrix::from_rows(3, 2, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        m.swap_rows(0, 2);
        assert_eq!(m.row(0), vec![5.0, 6.0]);
        assert_eq!(m.row(2), vec![1.0, 2.0]);
        m.swap_rows(1, 1); // no-op
        assert_eq!(m.row(1), vec![3.0, 4.0]);
    }

    #[test]
    fn matvec_identity_is_noop() {
        let i = Matrix::identity(4);
        let x = vec![1.0, -2.0, 3.0, 0.5];
        assert_eq!(i.matvec(&x).unwrap(), x);
    }

    #[test]
    fn matvec_rejects_mismatched_length() {
        let m = Matrix::zeros(2, 3);
        assert!(m.matvec(&[1.0, 2.0]).is_err());
    }

    #[test]
    fn matvec_known_product() {
        let m = Matrix::from_rows(2, 2, &[1.0, 2.0, 3.0, 4.0]).unwrap();
        let y = m.matvec(&[1.0, 1.0]).unwrap();
        assert_eq!(y, vec![3.0, 7.0]);
    }

    #[test]
    fn diag_dominant_really_dominant() {
        let mut rng = Rng64::new(11);
        let m = Matrix::random_diag_dominant(20, &mut rng);
        for i in 0..20 {
            let off: f64 = (0..20).filter(|&j| j != i).map(|j| m[(i, j)].abs()).sum();
            assert!(m[(i, i)].abs() > off);
        }
    }

    #[test]
    fn spd_is_symmetric_with_positive_diagonal() {
        let mut rng = Rng64::new(13);
        let a = Matrix::random_spd(12, &mut rng);
        for i in 0..12 {
            assert!(a[(i, i)] > 0.0);
            for j in 0..12 {
                assert!((a[(i, j)] - a[(j, i)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn norms_and_diffs() {
        let m = Matrix::from_rows(2, 2, &[3.0, 0.0, 0.0, 4.0]).unwrap();
        assert!((m.frobenius_norm() - 5.0).abs() < 1e-12);
        assert!((vec_norm2(&[3.0, 4.0]) - 5.0).abs() < 1e-12);
        let n = Matrix::from_rows(2, 2, &[3.0, 0.0, 1.0, 4.0]).unwrap();
        assert!((m.max_abs_diff(&n) - 1.0).abs() < 1e-12);
        assert_eq!(m.max_abs_diff(&Matrix::zeros(1, 1)), f64::INFINITY);
        assert_eq!(vec_max_abs_diff(&[1.0], &[1.0, 2.0]), f64::INFINITY);
    }

    #[test]
    fn display_does_not_panic_on_large() {
        let m = Matrix::zeros(20, 20);
        let s = format!("{m}");
        assert!(s.contains("[20x20]"));
    }
}
