//! The data objects a NetSolve call carries: scalars, vectors, dense and
//! sparse matrices, and strings.
//!
//! Every input/output of every problem is one of these. The agent's
//! completion-time predictor only needs [`DataObject::wire_bytes`] (how much
//! will cross the network) and the dominant dimension `n` used by the
//! complexity formula, so both are defined here alongside the values
//! themselves.

use crate::error::{NetSolveError, Result};
use crate::matrix::Matrix;
use crate::sparse::CsrMatrix;

/// Category of a data object, used in problem signatures ("this problem
/// takes a matrix and a vector, and returns a vector").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ObjectKind {
    /// 64-bit signed integer scalar.
    IntScalar,
    /// 64-bit float scalar.
    DoubleScalar,
    /// Dense `f64` vector.
    Vector,
    /// Dense `f64` matrix (column-major).
    Matrix,
    /// Sparse `f64` matrix (CSR).
    SparseMatrix,
    /// UTF-8 string (option flags, file names...).
    Text,
}

impl ObjectKind {
    /// Stable wire tag.
    pub fn tag(self) -> u8 {
        match self {
            ObjectKind::IntScalar => 0,
            ObjectKind::DoubleScalar => 1,
            ObjectKind::Vector => 2,
            ObjectKind::Matrix => 3,
            ObjectKind::SparseMatrix => 4,
            ObjectKind::Text => 5,
        }
    }

    /// Inverse of [`ObjectKind::tag`].
    pub fn from_tag(tag: u8) -> Result<Self> {
        Ok(match tag {
            0 => ObjectKind::IntScalar,
            1 => ObjectKind::DoubleScalar,
            2 => ObjectKind::Vector,
            3 => ObjectKind::Matrix,
            4 => ObjectKind::SparseMatrix,
            5 => ObjectKind::Text,
            other => {
                return Err(NetSolveError::Protocol(format!(
                    "unknown object kind tag {other}"
                )))
            }
        })
    }

    /// Lower-case name used by the problem description language.
    pub fn name(self) -> &'static str {
        match self {
            ObjectKind::IntScalar => "int",
            ObjectKind::DoubleScalar => "double",
            ObjectKind::Vector => "vector",
            ObjectKind::Matrix => "matrix",
            ObjectKind::SparseMatrix => "sparse",
            ObjectKind::Text => "string",
        }
    }

    /// Parse a PDL type name.
    pub fn from_name(name: &str) -> Result<Self> {
        Ok(match name {
            "int" => ObjectKind::IntScalar,
            "double" => ObjectKind::DoubleScalar,
            "vector" => ObjectKind::Vector,
            "matrix" => ObjectKind::Matrix,
            "sparse" => ObjectKind::SparseMatrix,
            "string" => ObjectKind::Text,
            other => {
                return Err(NetSolveError::Description(format!(
                    "unknown object type '{other}'"
                )))
            }
        })
    }
}

impl std::fmt::Display for ObjectKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One concrete argument or result of a NetSolve call.
#[derive(Debug, Clone, PartialEq)]
pub enum DataObject {
    /// Integer scalar.
    Int(i64),
    /// Floating-point scalar.
    Double(f64),
    /// Dense vector.
    Vector(Vec<f64>),
    /// Dense matrix.
    Matrix(Matrix),
    /// Sparse CSR matrix.
    Sparse(CsrMatrix),
    /// Text value.
    Text(String),
}

impl DataObject {
    /// This object's kind.
    pub fn kind(&self) -> ObjectKind {
        match self {
            DataObject::Int(_) => ObjectKind::IntScalar,
            DataObject::Double(_) => ObjectKind::DoubleScalar,
            DataObject::Vector(_) => ObjectKind::Vector,
            DataObject::Matrix(_) => ObjectKind::Matrix,
            DataObject::Sparse(_) => ObjectKind::SparseMatrix,
            DataObject::Text(_) => ObjectKind::Text,
        }
    }

    /// Approximate bytes this object occupies on the wire (payload only;
    /// framing is a few dozen bytes and irrelevant to the predictor).
    pub fn wire_bytes(&self) -> u64 {
        match self {
            DataObject::Int(_) => 8,
            DataObject::Double(_) => 8,
            DataObject::Vector(v) => 8 + 8 * v.len() as u64,
            DataObject::Matrix(m) => 16 + 8 * m.len() as u64,
            DataObject::Sparse(s) => {
                let (rp, ci, v) = s.parts();
                16 + 8 * (rp.len() + ci.len() + v.len()) as u64
            }
            DataObject::Text(t) => 4 + t.len() as u64,
        }
    }

    /// The dominant problem dimension used by complexity formulas
    /// (`a * n^b`): rows for matrices, length for vectors, the value itself
    /// for integer scalars (e.g. FFT size passed as a scalar).
    pub fn dominant_dim(&self) -> u64 {
        match self {
            DataObject::Int(i) => (*i).max(0) as u64,
            DataObject::Double(_) => 1,
            DataObject::Vector(v) => v.len() as u64,
            DataObject::Matrix(m) => m.rows() as u64,
            DataObject::Sparse(s) => s.rows() as u64,
            DataObject::Text(_) => 1,
        }
    }

    /// Extract an integer scalar or fail with `BadArguments`.
    pub fn as_int(&self) -> Result<i64> {
        match self {
            DataObject::Int(i) => Ok(*i),
            other => Err(bad_kind("int", other)),
        }
    }

    /// Extract a double scalar or fail with `BadArguments`.
    pub fn as_double(&self) -> Result<f64> {
        match self {
            DataObject::Double(d) => Ok(*d),
            DataObject::Int(i) => Ok(*i as f64),
            other => Err(bad_kind("double", other)),
        }
    }

    /// Extract a vector or fail with `BadArguments`.
    pub fn as_vector(&self) -> Result<&[f64]> {
        match self {
            DataObject::Vector(v) => Ok(v),
            other => Err(bad_kind("vector", other)),
        }
    }

    /// Extract a dense matrix or fail with `BadArguments`.
    pub fn as_matrix(&self) -> Result<&Matrix> {
        match self {
            DataObject::Matrix(m) => Ok(m),
            other => Err(bad_kind("matrix", other)),
        }
    }

    /// Extract a sparse matrix or fail with `BadArguments`.
    pub fn as_sparse(&self) -> Result<&CsrMatrix> {
        match self {
            DataObject::Sparse(s) => Ok(s),
            other => Err(bad_kind("sparse", other)),
        }
    }

    /// Extract a string or fail with `BadArguments`.
    pub fn as_text(&self) -> Result<&str> {
        match self {
            DataObject::Text(t) => Ok(t),
            other => Err(bad_kind("string", other)),
        }
    }
}

fn bad_kind(expected: &str, got: &DataObject) -> NetSolveError {
    NetSolveError::BadArguments(format!("expected {expected}, got {}", got.kind()))
}

impl From<i64> for DataObject {
    fn from(v: i64) -> Self {
        DataObject::Int(v)
    }
}
impl From<f64> for DataObject {
    fn from(v: f64) -> Self {
        DataObject::Double(v)
    }
}
impl From<Vec<f64>> for DataObject {
    fn from(v: Vec<f64>) -> Self {
        DataObject::Vector(v)
    }
}
impl From<Matrix> for DataObject {
    fn from(v: Matrix) -> Self {
        DataObject::Matrix(v)
    }
}
impl From<CsrMatrix> for DataObject {
    fn from(v: CsrMatrix) -> Self {
        DataObject::Sparse(v)
    }
}
impl From<&str> for DataObject {
    fn from(v: &str) -> Self {
        DataObject::Text(v.to_string())
    }
}
impl From<String> for DataObject {
    fn from(v: String) -> Self {
        DataObject::Text(v)
    }
}

/// Total wire bytes of a slice of objects (the predictor's `bytes_in` /
/// `bytes_out`).
pub fn total_wire_bytes(objects: &[DataObject]) -> u64 {
    objects.iter().map(|o| o.wire_bytes()).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng64;

    #[test]
    fn kind_tags_roundtrip() {
        for kind in [
            ObjectKind::IntScalar,
            ObjectKind::DoubleScalar,
            ObjectKind::Vector,
            ObjectKind::Matrix,
            ObjectKind::SparseMatrix,
            ObjectKind::Text,
        ] {
            assert_eq!(ObjectKind::from_tag(kind.tag()).unwrap(), kind);
            assert_eq!(ObjectKind::from_name(kind.name()).unwrap(), kind);
        }
        assert!(ObjectKind::from_tag(99).is_err());
        assert!(ObjectKind::from_name("quaternion").is_err());
    }

    #[test]
    fn wire_bytes_scale_with_payload() {
        assert_eq!(DataObject::Int(5).wire_bytes(), 8);
        assert_eq!(DataObject::Vector(vec![0.0; 100]).wire_bytes(), 808);
        let m = Matrix::zeros(10, 20);
        assert_eq!(DataObject::Matrix(m).wire_bytes(), 16 + 1600);
        assert_eq!(DataObject::Text("abc".into()).wire_bytes(), 7);
    }

    #[test]
    fn dominant_dim_semantics() {
        assert_eq!(DataObject::Int(1024).dominant_dim(), 1024);
        assert_eq!(DataObject::Int(-5).dominant_dim(), 0);
        assert_eq!(DataObject::Vector(vec![0.0; 7]).dominant_dim(), 7);
        assert_eq!(DataObject::Matrix(Matrix::zeros(9, 4)).dominant_dim(), 9);
        assert_eq!(DataObject::Double(3.5).dominant_dim(), 1);
    }

    #[test]
    fn accessors_enforce_kinds() {
        let obj = DataObject::Vector(vec![1.0]);
        assert!(obj.as_vector().is_ok());
        assert!(obj.as_matrix().is_err());
        assert!(obj.as_int().is_err());
        assert!(obj.as_text().is_err());
        // int promotes to double
        assert_eq!(DataObject::Int(3).as_double().unwrap(), 3.0);
        assert!(DataObject::Double(1.0).as_int().is_err());
    }

    #[test]
    fn from_impls() {
        assert_eq!(DataObject::from(3i64).kind(), ObjectKind::IntScalar);
        assert_eq!(DataObject::from(3.0f64).kind(), ObjectKind::DoubleScalar);
        assert_eq!(DataObject::from(vec![1.0]).kind(), ObjectKind::Vector);
        assert_eq!(DataObject::from("x").kind(), ObjectKind::Text);
        assert_eq!(
            DataObject::from(Matrix::zeros(1, 1)).kind(),
            ObjectKind::Matrix
        );
        let mut rng = Rng64::new(1);
        let s = CsrMatrix::random_diag_dominant(4, 0.5, &mut rng);
        assert_eq!(DataObject::from(s).kind(), ObjectKind::SparseMatrix);
    }

    #[test]
    fn total_wire_bytes_sums() {
        let objs = vec![
            DataObject::Int(1),
            DataObject::Vector(vec![0.0; 10]),
            DataObject::Text("hi".into()),
        ];
        assert_eq!(total_wire_bytes(&objs), 8 + 88 + 6);
    }
}
