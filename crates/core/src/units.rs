//! Human-readable formatting of the quantities the experiment harness
//! prints: byte counts, durations, rates.

/// Format a byte count with a binary-prefix unit (`1.5 MiB`).
pub fn fmt_bytes(bytes: u64) -> String {
    const UNITS: [&str; 5] = ["B", "KiB", "MiB", "GiB", "TiB"];
    let mut value = bytes as f64;
    let mut unit = 0;
    while value >= 1024.0 && unit + 1 < UNITS.len() {
        value /= 1024.0;
        unit += 1;
    }
    if unit == 0 {
        format!("{bytes} B")
    } else {
        format!("{value:.2} {}", UNITS[unit])
    }
}

/// Format a duration given in seconds, choosing µs/ms/s/min for readability.
pub fn fmt_secs(secs: f64) -> String {
    let abs = secs.abs();
    if abs < 1e-3 {
        format!("{:.1} µs", secs * 1e6)
    } else if abs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else if abs < 120.0 {
        format!("{secs:.3} s")
    } else {
        format!("{:.1} min", secs / 60.0)
    }
}

/// Format a throughput in bytes/second (`12.3 MiB/s`).
pub fn fmt_rate(bytes_per_sec: f64) -> String {
    const UNITS: [&str; 4] = ["B/s", "KiB/s", "MiB/s", "GiB/s"];
    let mut value = bytes_per_sec;
    let mut unit = 0;
    while value >= 1024.0 && unit + 1 < UNITS.len() {
        value /= 1024.0;
        unit += 1;
    }
    format!("{value:.2} {}", UNITS[unit])
}

/// Format a flop rate (`250.0 Mflop/s`).
pub fn fmt_mflops(mflops: f64) -> String {
    if mflops >= 1000.0 {
        format!("{:.2} Gflop/s", mflops / 1000.0)
    } else {
        format!("{mflops:.1} Mflop/s")
    }
}

/// Megabytes (decimal) to bytes — network bandwidths in the experiments are
/// specified in MB/s like the paper's 1996-era links.
pub fn mb(megabytes: f64) -> f64 {
    megabytes * 1e6
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_formatting() {
        assert_eq!(fmt_bytes(512), "512 B");
        assert_eq!(fmt_bytes(2048), "2.00 KiB");
        assert_eq!(fmt_bytes(3 * 1024 * 1024), "3.00 MiB");
        assert!(fmt_bytes(5 * 1024 * 1024 * 1024).contains("GiB"));
    }

    #[test]
    fn secs_formatting_picks_unit() {
        assert!(fmt_secs(0.0000005).contains("µs"));
        assert!(fmt_secs(0.005).contains("ms"));
        assert!(fmt_secs(2.5).contains("s"));
        assert!(fmt_secs(300.0).contains("min"));
    }

    #[test]
    fn rate_formatting() {
        assert_eq!(fmt_rate(100.0), "100.00 B/s");
        assert!(fmt_rate(2.0 * 1024.0 * 1024.0).contains("MiB/s"));
    }

    #[test]
    fn mflops_formatting() {
        assert_eq!(fmt_mflops(100.0), "100.0 Mflop/s");
        assert_eq!(fmt_mflops(2500.0), "2.50 Gflop/s");
    }

    #[test]
    fn mb_helper() {
        assert_eq!(mb(1.0), 1e6);
        assert_eq!(mb(12.5), 12_500_000.0);
    }
}
