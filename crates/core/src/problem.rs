//! The problem model: what a NetSolve "problem" is, independent of any
//! particular server implementation.
//!
//! A problem is identified by a mnemonic (`"dgesv"`, `"fft"`, ...), declares
//! typed inputs and outputs, and carries a *complexity expression*
//! `a * n^b` that the agent's load balancer uses to predict execution time
//! on a candidate server.

use crate::data::{DataObject, ObjectKind};
use crate::error::{NetSolveError, Result};

/// Polynomial complexity model `flops(n) = a * n^b`, NetSolve's original
/// two-parameter characterization of a problem's cost.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Complexity {
    /// Multiplicative constant.
    pub a: f64,
    /// Exponent on the dominant dimension.
    pub b: f64,
}

impl Complexity {
    /// Construct; both parameters must be non-negative and `a` positive.
    pub fn new(a: f64, b: f64) -> Result<Self> {
        // NaN parameters fall to the is_finite arms.
        if a <= 0.0 || b < 0.0 || !a.is_finite() || !b.is_finite() {
            return Err(NetSolveError::Description(format!(
                "invalid complexity a={a}, b={b}"
            )));
        }
        Ok(Complexity { a, b })
    }

    /// Estimated floating-point operations for dominant dimension `n`.
    pub fn flops(&self, n: u64) -> f64 {
        self.a * (n as f64).powf(self.b)
    }

    /// Estimated seconds on a machine delivering `mflops` Mflop/s.
    pub fn seconds_at(&self, n: u64, mflops: f64) -> f64 {
        if mflops <= 0.0 {
            return f64::INFINITY;
        }
        self.flops(n) / (mflops * 1e6)
    }
}

impl std::fmt::Display for Complexity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}*n^{}", self.a, self.b)
    }
}

/// One declared input or output of a problem.
#[derive(Debug, Clone, PartialEq)]
pub struct ObjectSpec {
    /// Argument name as it appears in the problem description.
    pub name: String,
    /// Expected kind.
    pub kind: ObjectKind,
    /// Human description shown by `netsolve list`.
    pub description: String,
}

impl ObjectSpec {
    /// Shorthand constructor.
    pub fn new(name: &str, kind: ObjectKind, description: &str) -> Self {
        ObjectSpec {
            name: name.to_string(),
            kind,
            description: description.to_string(),
        }
    }
}

/// Complete description of a problem a server can solve.
#[derive(Debug, Clone, PartialEq)]
pub struct ProblemSpec {
    /// Unique mnemonic, lower-case (e.g. `"dgesv"`).
    pub name: String,
    /// One-line human description.
    pub description: String,
    /// Declared inputs, in calling order.
    pub inputs: Vec<ObjectSpec>,
    /// Declared outputs, in return order.
    pub outputs: Vec<ObjectSpec>,
    /// Cost model for the load balancer.
    pub complexity: Complexity,
    /// Which input supplies the dominant dimension `n` (index into
    /// `inputs`). NetSolve called this the "major" object.
    pub major_input: usize,
}

impl ProblemSpec {
    /// Validate internal consistency (non-empty name, major index in range,
    /// unique argument names).
    pub fn validate(&self) -> Result<()> {
        if self.name.is_empty() {
            return Err(NetSolveError::Description("empty problem name".into()));
        }
        if !self
            .name
            .chars()
            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
        {
            return Err(NetSolveError::Description(format!(
                "problem name '{}' must be lower-case [a-z0-9_]",
                self.name
            )));
        }
        if self.inputs.is_empty() {
            return Err(NetSolveError::Description(format!(
                "problem '{}' declares no inputs",
                self.name
            )));
        }
        if self.major_input >= self.inputs.len() {
            return Err(NetSolveError::Description(format!(
                "problem '{}': major input index {} out of range ({} inputs)",
                self.name,
                self.major_input,
                self.inputs.len()
            )));
        }
        let mut names: Vec<&str> = self
            .inputs
            .iter()
            .chain(&self.outputs)
            .map(|o| o.name.as_str())
            .collect();
        names.sort_unstable();
        if names.windows(2).any(|w| w[0] == w[1]) {
            return Err(NetSolveError::Description(format!(
                "problem '{}' has duplicate argument names",
                self.name
            )));
        }
        Ok(())
    }

    /// Check a concrete argument list against the declared inputs.
    pub fn check_inputs(&self, args: &[DataObject]) -> Result<()> {
        if args.len() != self.inputs.len() {
            return Err(NetSolveError::BadArguments(format!(
                "problem '{}' expects {} inputs, got {}",
                self.name,
                self.inputs.len(),
                args.len()
            )));
        }
        for (spec, arg) in self.inputs.iter().zip(args) {
            if spec.kind != arg.kind() {
                return Err(NetSolveError::BadArguments(format!(
                    "problem '{}', argument '{}': expected {}, got {}",
                    self.name,
                    spec.name,
                    spec.kind,
                    arg.kind()
                )));
            }
        }
        Ok(())
    }

    /// Check a concrete result list against the declared outputs.
    pub fn check_outputs(&self, outs: &[DataObject]) -> Result<()> {
        if outs.len() != self.outputs.len() {
            return Err(NetSolveError::BadArguments(format!(
                "problem '{}' produces {} outputs, got {}",
                self.name,
                self.outputs.len(),
                outs.len()
            )));
        }
        for (spec, out) in self.outputs.iter().zip(outs) {
            if spec.kind != out.kind() {
                return Err(NetSolveError::BadArguments(format!(
                    "problem '{}', output '{}': expected {}, got {}",
                    self.name,
                    spec.name,
                    spec.kind,
                    out.kind()
                )));
            }
        }
        Ok(())
    }

    /// Dominant dimension of a concrete argument list, per the declared
    /// major input.
    pub fn dominant_dim(&self, args: &[DataObject]) -> u64 {
        args.get(self.major_input)
            .map(|o| o.dominant_dim())
            .unwrap_or(0)
    }

    /// Predicted flops for a concrete argument list.
    pub fn predicted_flops(&self, args: &[DataObject]) -> f64 {
        self.complexity.flops(self.dominant_dim(args))
    }
}

/// The abstract *shape* of one request, which is all the agent needs for
/// ranking: problem name, dominant dimension, and bytes each way.
///
/// The live client computes this from real arguments; the simulator
/// synthesizes it directly from workload parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestShape {
    /// Problem mnemonic.
    pub problem: String,
    /// Dominant dimension `n` for the complexity formula.
    pub n: u64,
    /// Bytes the client will upload (inputs).
    pub bytes_in: u64,
    /// Bytes the server will send back (outputs).
    pub bytes_out: u64,
}

impl RequestShape {
    /// Derive the shape of a concrete call. Output size is estimated from
    /// the declared output kinds and the dominant dimension, since outputs
    /// do not exist yet at scheduling time (NetSolve did the same).
    pub fn from_call(spec: &ProblemSpec, args: &[DataObject]) -> Self {
        let n = spec.dominant_dim(args);
        let bytes_in = crate::data::total_wire_bytes(args);
        let bytes_out = spec
            .outputs
            .iter()
            .map(|o| match o.kind {
                ObjectKind::IntScalar | ObjectKind::DoubleScalar => 8,
                ObjectKind::Vector => 8 + 8 * n,
                ObjectKind::Matrix => 16 + 8 * n * n,
                // CSR of a typical sparse result: assume ~5 entries/row.
                ObjectKind::SparseMatrix => 16 + 8 * (n + 1) + 16 * 5 * n,
                ObjectKind::Text => 64,
            })
            .sum();
        RequestShape {
            problem: spec.name.clone(),
            n,
            bytes_in,
            bytes_out,
        }
    }

    /// Total bytes both ways.
    pub fn total_bytes(&self) -> u64 {
        self.bytes_in + self.bytes_out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Matrix;

    fn dgesv_spec() -> ProblemSpec {
        ProblemSpec {
            name: "dgesv".into(),
            description: "solve dense linear system Ax=b".into(),
            inputs: vec![
                ObjectSpec::new("a", ObjectKind::Matrix, "coefficient matrix"),
                ObjectSpec::new("b", ObjectKind::Vector, "right-hand side"),
            ],
            outputs: vec![ObjectSpec::new("x", ObjectKind::Vector, "solution")],
            complexity: Complexity::new(2.0 / 3.0, 3.0).unwrap(),
            major_input: 0,
        }
    }

    #[test]
    fn complexity_math() {
        let c = Complexity::new(2.0, 3.0).unwrap();
        assert_eq!(c.flops(10), 2000.0);
        // 2000 flops at 1 Mflop/s = 2 ms
        assert!((c.seconds_at(10, 1.0) - 0.002).abs() < 1e-12);
        assert_eq!(c.seconds_at(10, 0.0), f64::INFINITY);
        assert_eq!(c.to_string(), "2*n^3");
    }

    #[test]
    fn complexity_rejects_invalid() {
        assert!(Complexity::new(0.0, 3.0).is_err());
        assert!(Complexity::new(-1.0, 2.0).is_err());
        assert!(Complexity::new(1.0, -1.0).is_err());
        assert!(Complexity::new(f64::NAN, 2.0).is_err());
    }

    #[test]
    fn spec_validates() {
        assert!(dgesv_spec().validate().is_ok());

        let mut bad = dgesv_spec();
        bad.name = "DGESV".into();
        assert!(bad.validate().is_err());

        let mut bad = dgesv_spec();
        bad.major_input = 5;
        assert!(bad.validate().is_err());

        let mut bad = dgesv_spec();
        bad.inputs.clear();
        assert!(bad.validate().is_err());

        let mut bad = dgesv_spec();
        bad.outputs[0].name = "a".into(); // duplicate with input
        assert!(bad.validate().is_err());

        let mut bad = dgesv_spec();
        bad.name = String::new();
        assert!(bad.validate().is_err());
    }

    #[test]
    fn input_checking() {
        let spec = dgesv_spec();
        let good = vec![
            DataObject::Matrix(Matrix::identity(3)),
            DataObject::Vector(vec![1.0, 2.0, 3.0]),
        ];
        assert!(spec.check_inputs(&good).is_ok());

        // wrong arity
        assert!(spec.check_inputs(&good[..1]).is_err());
        // wrong kind
        let bad = vec![DataObject::Int(3), DataObject::Vector(vec![1.0])];
        assert!(spec.check_inputs(&bad).is_err());
    }

    #[test]
    fn output_checking() {
        let spec = dgesv_spec();
        assert!(spec.check_outputs(&[DataObject::Vector(vec![0.0; 3])]).is_ok());
        assert!(spec.check_outputs(&[DataObject::Int(1)]).is_err());
        assert!(spec.check_outputs(&[]).is_err());
    }

    #[test]
    fn dominant_dim_uses_major_input() {
        let spec = dgesv_spec();
        let args = vec![
            DataObject::Matrix(Matrix::zeros(50, 50)),
            DataObject::Vector(vec![0.0; 50]),
        ];
        assert_eq!(spec.dominant_dim(&args), 50);
        let expected = (2.0 / 3.0) * 50f64.powi(3);
        assert!((spec.predicted_flops(&args) - expected).abs() < 1e-6);
    }

    #[test]
    fn request_shape_from_call() {
        let spec = dgesv_spec();
        let args = vec![
            DataObject::Matrix(Matrix::zeros(10, 10)),
            DataObject::Vector(vec![0.0; 10]),
        ];
        let shape = RequestShape::from_call(&spec, &args);
        assert_eq!(shape.problem, "dgesv");
        assert_eq!(shape.n, 10);
        assert_eq!(shape.bytes_in, (16 + 800) + (8 + 80));
        // one vector output of length n
        assert_eq!(shape.bytes_out, 8 + 80);
        assert_eq!(shape.total_bytes(), shape.bytes_in + shape.bytes_out);
    }
}
