//! Lightweight statistics used by the agent (EWMA network estimates) and by
//! the experiment harness (latency summaries, histograms).

/// Streaming mean/variance via Welford's algorithm, plus min/max.
#[derive(Debug, Clone, Default)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// An empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Incorporate one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Arithmetic mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Sample variance (0 with fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (+inf if empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (-inf if empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merge another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Exact percentile summary over a stored sample (fine for experiment sizes).
#[derive(Debug, Clone, Default)]
pub struct Sample {
    values: Vec<f64>,
    sorted: bool,
}

impl Sample {
    /// An empty sample.
    pub fn new() -> Self {
        Sample { values: Vec::new(), sorted: true }
    }

    /// Add one observation.
    pub fn push(&mut self, x: f64) {
        self.values.push(x);
        self.sorted = false;
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when no observations have been recorded.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.values
                .sort_by(|a, b| a.partial_cmp(b).expect("NaN in sample"));
            self.sorted = true;
        }
    }

    /// Percentile in `[0, 100]` by linear interpolation; 0 if empty.
    pub fn percentile(&mut self, p: f64) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        self.ensure_sorted();
        let p = p.clamp(0.0, 100.0);
        let rank = p / 100.0 * (self.values.len() - 1) as f64;
        let lo = rank.floor() as usize;
        let hi = rank.ceil() as usize;
        if lo == hi {
            self.values[lo]
        } else {
            let frac = rank - lo as f64;
            self.values[lo] * (1.0 - frac) + self.values[hi] * frac
        }
    }

    /// Median (50th percentile).
    pub fn median(&mut self) -> f64 {
        self.percentile(50.0)
    }

    /// Arithmetic mean; 0 if empty.
    pub fn mean(&self) -> f64 {
        if self.values.is_empty() {
            0.0
        } else {
            self.values.iter().sum::<f64>() / self.values.len() as f64
        }
    }

    /// Largest observation; 0 if empty.
    pub fn max(&mut self) -> f64 {
        if self.values.is_empty() {
            0.0
        } else {
            self.ensure_sorted();
            *self.values.last().unwrap()
        }
    }

    /// Smallest observation; 0 if empty.
    pub fn min(&mut self) -> f64 {
        if self.values.is_empty() {
            0.0
        } else {
            self.ensure_sorted();
            self.values[0]
        }
    }

    /// Immutable view of the raw observations (unspecified order).
    pub fn values(&self) -> &[f64] {
        &self.values
    }
}

/// Exponentially-weighted moving average, used for the agent's latency and
/// bandwidth estimates: new measurements dominate gradually so a single
/// outlier does not flip server rankings.
#[derive(Debug, Clone, Copy)]
pub struct Ewma {
    alpha: f64,
    value: Option<f64>,
}

impl Ewma {
    /// `alpha` in `(0, 1]` is the weight of the newest observation.
    pub fn new(alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0,1]");
        Ewma { alpha, value: None }
    }

    /// Incorporate one observation.
    pub fn update(&mut self, x: f64) {
        self.value = Some(match self.value {
            None => x,
            Some(v) => self.alpha * x + (1.0 - self.alpha) * v,
        });
    }

    /// Current estimate, or `None` before any observation.
    pub fn get(&self) -> Option<f64> {
        self.value
    }

    /// Current estimate, or `default` before any observation.
    pub fn get_or(&self, default: f64) -> f64 {
        self.value.unwrap_or(default)
    }
}

/// Fixed-width histogram over `[lo, hi)` with out-of-range clamping,
/// used to print the request-latency distributions in the experiment output.
#[derive(Debug, Clone)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
}

impl Histogram {
    /// A histogram with `bins` equal-width buckets spanning `[lo, hi)`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(hi > lo && bins > 0, "invalid histogram bounds");
        Histogram { lo, hi, bins: vec![0; bins] }
    }

    /// Record one observation; values outside the range clamp to the edge
    /// buckets.
    pub fn record(&mut self, x: f64) {
        let width = (self.hi - self.lo) / self.bins.len() as f64;
        let idx = ((x - self.lo) / width).floor();
        let idx = idx.clamp(0.0, (self.bins.len() - 1) as f64) as usize;
        self.bins[idx] += 1;
    }

    /// Bucket counts in order.
    pub fn counts(&self) -> &[u64] {
        &self.bins
    }

    /// Total observations recorded.
    pub fn total(&self) -> u64 {
        self.bins.iter().sum()
    }

    /// `(bucket_midpoint, count)` pairs, convenient for printing series.
    pub fn series(&self) -> Vec<(f64, u64)> {
        let width = (self.hi - self.lo) / self.bins.len() as f64;
        self.bins
            .iter()
            .enumerate()
            .map(|(i, &c)| (self.lo + (i as f64 + 0.5) * width, c))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_stats_matches_direct_computation() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut s = OnlineStats::new();
        for &x in &xs {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // Sample variance of this classic data set is 32/7.
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn online_stats_merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = OnlineStats::new();
        for &x in &xs {
            whole.push(x);
        }
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for &x in &xs[..37] {
            a.push(x);
        }
        for &x in &xs[37..] {
            b.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-10);
        assert!((a.variance() - whole.variance()).abs() < 1e-10);
    }

    #[test]
    fn empty_stats_are_safe() {
        let s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        let mut sample = Sample::new();
        assert_eq!(sample.median(), 0.0);
        assert_eq!(sample.mean(), 0.0);
    }

    #[test]
    fn percentiles_interpolate() {
        let mut s = Sample::new();
        for x in [1.0, 2.0, 3.0, 4.0] {
            s.push(x);
        }
        assert!((s.percentile(0.0) - 1.0).abs() < 1e-12);
        assert!((s.percentile(100.0) - 4.0).abs() < 1e-12);
        assert!((s.median() - 2.5).abs() < 1e-12);
        assert!((s.percentile(25.0) - 1.75).abs() < 1e-12);
        assert!((s.min() - 1.0).abs() < 1e-12);
        assert!((s.max() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn ewma_converges_toward_constant_input() {
        let mut e = Ewma::new(0.5);
        assert_eq!(e.get(), None);
        e.update(10.0);
        assert_eq!(e.get(), Some(10.0));
        for _ in 0..50 {
            e.update(2.0);
        }
        assert!((e.get().unwrap() - 2.0).abs() < 1e-9);
        assert_eq!(Ewma::new(0.3).get_or(7.0), 7.0);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn ewma_rejects_bad_alpha() {
        let _ = Ewma::new(0.0);
    }

    #[test]
    fn histogram_buckets_and_clamps() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        h.record(-3.0); // clamps to first bucket
        h.record(0.5);
        h.record(9.9);
        h.record(42.0); // clamps to last bucket
        assert_eq!(h.counts(), &[2, 0, 0, 0, 2]);
        assert_eq!(h.total(), 4);
        let series = h.series();
        assert_eq!(series.len(), 5);
        assert!((series[0].0 - 1.0).abs() < 1e-12);
    }
}
