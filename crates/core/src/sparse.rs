//! Compressed-sparse-row matrices, standing in for the ITPACK-style sparse
//! problems NetSolve servers exposed (iterative solvers on large sparse
//! systems).

use crate::error::{NetSolveError, Result};
use crate::matrix::Matrix;
use crate::rng::Rng64;

/// Sparse matrix in CSR (compressed sparse row) format.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    /// `row_ptr[r]..row_ptr[r+1]` indexes this row's entries.
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<f64>,
}

impl CsrMatrix {
    /// Build from COO triplets `(row, col, value)`. Duplicate coordinates are
    /// summed; explicit zeros are kept (callers may prune). Errors on
    /// out-of-range coordinates.
    pub fn from_triplets(
        rows: usize,
        cols: usize,
        triplets: &[(usize, usize, f64)],
    ) -> Result<Self> {
        for &(r, c, _) in triplets {
            if r >= rows || c >= cols {
                return Err(NetSolveError::BadArguments(format!(
                    "triplet ({r},{c}) outside {rows}x{cols}"
                )));
            }
        }
        let mut sorted: Vec<(usize, usize, f64)> = triplets.to_vec();
        sorted.sort_by_key(|&(r, c, _)| (r, c));
        // merge duplicates
        let mut merged: Vec<(usize, usize, f64)> = Vec::with_capacity(sorted.len());
        for (r, c, v) in sorted {
            if let Some(last) = merged.last_mut() {
                if last.0 == r && last.1 == c {
                    last.2 += v;
                    continue;
                }
            }
            merged.push((r, c, v));
        }
        let mut row_ptr = vec![0usize; rows + 1];
        for &(r, _, _) in &merged {
            row_ptr[r + 1] += 1;
        }
        for r in 0..rows {
            row_ptr[r + 1] += row_ptr[r];
        }
        let col_idx = merged.iter().map(|&(_, c, _)| c).collect();
        let values = merged.iter().map(|&(_, _, v)| v).collect();
        Ok(CsrMatrix { rows, cols, row_ptr, col_idx, values })
    }

    /// Sparse identity.
    pub fn identity(n: usize) -> Self {
        let triplets: Vec<_> = (0..n).map(|i| (i, i, 1.0)).collect();
        CsrMatrix::from_triplets(n, n, &triplets).expect("identity triplets valid")
    }

    /// Standard 2-D Laplacian (5-point stencil) on an `nx x ny` grid: the
    /// canonical SPD test problem for iterative solvers.
    pub fn laplacian_2d(nx: usize, ny: usize) -> Self {
        let n = nx * ny;
        let idx = |i: usize, j: usize| i * ny + j;
        let mut t = Vec::with_capacity(5 * n);
        for i in 0..nx {
            for j in 0..ny {
                let k = idx(i, j);
                t.push((k, k, 4.0));
                if i > 0 {
                    t.push((k, idx(i - 1, j), -1.0));
                }
                if i + 1 < nx {
                    t.push((k, idx(i + 1, j), -1.0));
                }
                if j > 0 {
                    t.push((k, idx(i, j - 1), -1.0));
                }
                if j + 1 < ny {
                    t.push((k, idx(i, j + 1), -1.0));
                }
            }
        }
        CsrMatrix::from_triplets(n, n, &t).expect("laplacian triplets valid")
    }

    /// Random sparse matrix with ~`density` fraction of nonzeros, made
    /// diagonally dominant so iterative methods converge.
    pub fn random_diag_dominant(n: usize, density: f64, rng: &mut Rng64) -> Self {
        let mut t = Vec::new();
        let mut row_sums = vec![0.0f64; n];
        for (r, sum) in row_sums.iter_mut().enumerate() {
            for c in 0..n {
                if r != c && rng.chance(density) {
                    let v = rng.uniform(-1.0, 1.0);
                    t.push((r, c, v));
                    *sum += v.abs();
                }
            }
        }
        for (r, s) in row_sums.iter().enumerate() {
            t.push((r, r, s + 1.0 + rng.next_f64()));
        }
        CsrMatrix::from_triplets(n, n, &t).expect("random triplets valid")
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Value at `(r, c)` (0.0 where no entry is stored).
    pub fn get(&self, r: usize, c: usize) -> f64 {
        assert!(r < self.rows && c < self.cols, "index out of range");
        let lo = self.row_ptr[r];
        let hi = self.row_ptr[r + 1];
        match self.col_idx[lo..hi].binary_search(&c) {
            Ok(pos) => self.values[lo + pos],
            Err(_) => 0.0,
        }
    }

    /// Row `r` as `(col, value)` pairs.
    pub fn row_entries(&self, r: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        let lo = self.row_ptr[r];
        let hi = self.row_ptr[r + 1];
        self.col_idx[lo..hi]
            .iter()
            .copied()
            .zip(self.values[lo..hi].iter().copied())
    }

    /// Sparse matrix–vector product `y = A x`.
    pub fn spmv(&self, x: &[f64]) -> Result<Vec<f64>> {
        if x.len() != self.cols {
            return Err(NetSolveError::BadArguments(format!(
                "spmv: vector length {} does not match cols {}",
                x.len(),
                self.cols
            )));
        }
        let mut y = vec![0.0; self.rows];
        for (r, yr) in y.iter_mut().enumerate() {
            let mut acc = 0.0;
            for (c, v) in self.row_entries(r) {
                acc += v * x[c];
            }
            *yr = acc;
        }
        Ok(y)
    }

    /// Diagonal as a vector (0 where absent); errors on non-square.
    pub fn diagonal(&self) -> Result<Vec<f64>> {
        if self.rows != self.cols {
            return Err(NetSolveError::BadArguments(
                "diagonal of non-square matrix".into(),
            ));
        }
        Ok((0..self.rows).map(|i| self.get(i, i)).collect())
    }

    /// Densify (tests and small problems only).
    pub fn to_dense(&self) -> Matrix {
        let mut m = Matrix::zeros(self.rows, self.cols);
        for r in 0..self.rows {
            for (c, v) in self.row_entries(r) {
                m[(r, c)] = v;
            }
        }
        m
    }

    /// Raw CSR parts `(row_ptr, col_idx, values)` for marshaling.
    pub fn parts(&self) -> (&[usize], &[usize], &[f64]) {
        (&self.row_ptr, &self.col_idx, &self.values)
    }

    /// Rebuild from raw CSR parts, validating the invariants a wire peer
    /// could violate (monotone row_ptr, in-range columns, matching lengths).
    pub fn from_parts(
        rows: usize,
        cols: usize,
        row_ptr: Vec<usize>,
        col_idx: Vec<usize>,
        values: Vec<f64>,
    ) -> Result<Self> {
        if row_ptr.len() != rows + 1 {
            return Err(NetSolveError::BadArguments("row_ptr length".into()));
        }
        if row_ptr[0] != 0 || *row_ptr.last().unwrap() != values.len() {
            return Err(NetSolveError::BadArguments("row_ptr endpoints".into()));
        }
        if col_idx.len() != values.len() {
            return Err(NetSolveError::BadArguments("col_idx/values length".into()));
        }
        if row_ptr.windows(2).any(|w| w[0] > w[1]) {
            return Err(NetSolveError::BadArguments("row_ptr not monotone".into()));
        }
        if col_idx.iter().any(|&c| c >= cols) {
            return Err(NetSolveError::BadArguments("column index out of range".into()));
        }
        Ok(CsrMatrix { rows, cols, row_ptr, col_idx, values })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_triplets_sums_duplicates() {
        let m = CsrMatrix::from_triplets(2, 2, &[(0, 0, 1.0), (0, 0, 2.0), (1, 1, 5.0)]).unwrap();
        assert_eq!(m.nnz(), 2);
        assert_eq!(m.get(0, 0), 3.0);
        assert_eq!(m.get(1, 1), 5.0);
        assert_eq!(m.get(0, 1), 0.0);
    }

    #[test]
    fn from_triplets_rejects_out_of_range() {
        assert!(CsrMatrix::from_triplets(2, 2, &[(2, 0, 1.0)]).is_err());
        assert!(CsrMatrix::from_triplets(2, 2, &[(0, 5, 1.0)]).is_err());
    }

    #[test]
    fn identity_spmv_is_noop() {
        let i = CsrMatrix::identity(5);
        let x = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(i.spmv(&x).unwrap(), x);
        assert_eq!(i.nnz(), 5);
    }

    #[test]
    fn spmv_matches_dense_matvec() {
        let mut rng = Rng64::new(21);
        let a = CsrMatrix::random_diag_dominant(30, 0.2, &mut rng);
        let x: Vec<f64> = (0..30).map(|i| (i as f64).cos()).collect();
        let sparse_y = a.spmv(&x).unwrap();
        let dense_y = a.to_dense().matvec(&x).unwrap();
        for (s, d) in sparse_y.iter().zip(&dense_y) {
            assert!((s - d).abs() < 1e-10);
        }
    }

    #[test]
    fn spmv_rejects_bad_length() {
        let i = CsrMatrix::identity(3);
        assert!(i.spmv(&[1.0]).is_err());
    }

    #[test]
    fn laplacian_structure() {
        let l = CsrMatrix::laplacian_2d(3, 3);
        assert_eq!(l.rows(), 9);
        assert_eq!(l.get(4, 4), 4.0); // center node
        assert_eq!(l.get(4, 1), -1.0);
        assert_eq!(l.get(4, 3), -1.0);
        assert_eq!(l.get(4, 5), -1.0);
        assert_eq!(l.get(4, 7), -1.0);
        assert_eq!(l.get(0, 8), 0.0);
        // symmetric
        for r in 0..9 {
            for c in 0..9 {
                assert_eq!(l.get(r, c), l.get(c, r));
            }
        }
    }

    #[test]
    fn diagonal_and_errors() {
        let l = CsrMatrix::laplacian_2d(2, 2);
        assert_eq!(l.diagonal().unwrap(), vec![4.0; 4]);
        let rect = CsrMatrix::from_triplets(2, 3, &[(0, 0, 1.0)]).unwrap();
        assert!(rect.diagonal().is_err());
    }

    #[test]
    fn parts_roundtrip() {
        let mut rng = Rng64::new(2);
        let a = CsrMatrix::random_diag_dominant(15, 0.3, &mut rng);
        let (rp, ci, v) = a.parts();
        let b = CsrMatrix::from_parts(15, 15, rp.to_vec(), ci.to_vec(), v.to_vec()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn from_parts_validates() {
        // bad row_ptr length
        assert!(CsrMatrix::from_parts(2, 2, vec![0, 1], vec![0], vec![1.0]).is_err());
        // non-monotone row_ptr
        assert!(CsrMatrix::from_parts(2, 2, vec![0, 1, 0], vec![0], vec![1.0]).is_err());
        // col out of range
        assert!(CsrMatrix::from_parts(1, 1, vec![0, 1], vec![3], vec![1.0]).is_err());
        // mismatched col/value lengths
        assert!(CsrMatrix::from_parts(1, 1, vec![0, 1], vec![0, 0], vec![1.0]).is_err());
        // endpoint mismatch
        assert!(CsrMatrix::from_parts(1, 1, vec![0, 2], vec![0], vec![1.0]).is_err());
    }

    #[test]
    fn random_sparse_is_diag_dominant() {
        let mut rng = Rng64::new(8);
        let a = CsrMatrix::random_diag_dominant(25, 0.15, &mut rng);
        for r in 0..25 {
            let off: f64 = a
                .row_entries(r)
                .filter(|&(c, _)| c != r)
                .map(|(_, v)| v.abs())
                .sum();
            assert!(a.get(r, r) > off);
        }
    }
}
