//! Time abstraction shared by the live system and the simulator.
//!
//! The live agent/server/client stack measures real wall-clock time; the
//! discrete-event simulator advances a virtual clock. Both implement
//! [`Clock`], so code like the workload manager's time-to-live logic is
//! written once and tested deterministically.

use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;

/// A point in time, in seconds since an arbitrary epoch.
///
/// Stored as `f64` seconds: the simulator needs sub-millisecond arithmetic
/// on analytic quantities (bytes/bandwidth), and 52 bits of mantissa give
/// microsecond resolution over centuries.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct SimTime(pub f64);

impl SimTime {
    /// The epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0.0);

    /// Construct from seconds.
    pub fn from_secs(s: f64) -> Self {
        SimTime(s)
    }

    /// Construct from milliseconds.
    pub fn from_millis(ms: f64) -> Self {
        SimTime(ms / 1e3)
    }

    /// Seconds since epoch.
    pub fn as_secs(self) -> f64 {
        self.0
    }

    /// Milliseconds since epoch.
    pub fn as_millis(self) -> f64 {
        self.0 * 1e3
    }

    /// Elapsed seconds since `earlier` (negative if `earlier` is later).
    pub fn since(self, earlier: SimTime) -> f64 {
        self.0 - earlier.0
    }

    /// This time advanced by `secs` seconds.
    pub fn plus(self, secs: f64) -> SimTime {
        SimTime(self.0 + secs)
    }
}

impl std::ops::Add<f64> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: f64) -> SimTime {
        SimTime(self.0 + rhs)
    }
}

impl std::ops::Sub for SimTime {
    type Output = f64;
    fn sub(self, rhs: SimTime) -> f64 {
        self.0 - rhs.0
    }
}

impl std::fmt::Display for SimTime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.6}s", self.0)
    }
}

/// Source of "now", implemented by both wall-clock and virtual time.
pub trait Clock: Send + Sync {
    /// Current time.
    fn now(&self) -> SimTime;
}

/// Wall-clock time relative to the clock's creation.
#[derive(Debug)]
pub struct RealClock {
    start: Instant,
}

impl RealClock {
    /// A clock whose epoch is the moment of creation.
    pub fn new() -> Self {
        RealClock { start: Instant::now() }
    }
}

impl Default for RealClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for RealClock {
    fn now(&self) -> SimTime {
        SimTime(self.start.elapsed().as_secs_f64())
    }
}

/// A manually-advanced clock for simulation and deterministic tests.
///
/// Cloning shares the underlying time cell, so every component holding a
/// clone observes the same virtual instant.
#[derive(Debug, Clone, Default)]
pub struct VirtualClock {
    now: Arc<Mutex<f64>>,
}

impl VirtualClock {
    /// A virtual clock starting at t = 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Move the clock to an absolute time. Panics if this would move time
    /// backwards — event-driven code relies on monotonicity.
    pub fn set(&self, t: SimTime) {
        let mut now = self.now.lock();
        assert!(
            t.0 >= *now,
            "virtual clock moved backwards: {} -> {}",
            *now,
            t.0
        );
        *now = t.0;
    }

    /// Advance the clock by `secs` seconds.
    pub fn advance(&self, secs: f64) {
        assert!(secs >= 0.0, "cannot advance by negative time");
        *self.now.lock() += secs;
    }
}

impl Clock for VirtualClock {
    fn now(&self) -> SimTime {
        SimTime(*self.now.lock())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simtime_arithmetic() {
        let a = SimTime::from_secs(2.0);
        let b = a + 0.5;
        assert!((b.as_secs() - 2.5).abs() < 1e-12);
        assert!((b - a - 0.5).abs() < 1e-12);
        assert!((b.since(a) - 0.5).abs() < 1e-12);
        assert!((SimTime::from_millis(1500.0).as_secs() - 1.5).abs() < 1e-12);
        assert!((a.plus(1.0).as_millis() - 3000.0).abs() < 1e-9);
    }

    #[test]
    fn real_clock_monotonic() {
        let c = RealClock::new();
        let t1 = c.now();
        let t2 = c.now();
        assert!(t2.as_secs() >= t1.as_secs());
    }

    #[test]
    fn virtual_clock_advances_and_shares() {
        let c = VirtualClock::new();
        let c2 = c.clone();
        assert_eq!(c.now().as_secs(), 0.0);
        c.advance(1.5);
        assert!((c2.now().as_secs() - 1.5).abs() < 1e-12);
        c2.set(SimTime::from_secs(3.0));
        assert!((c.now().as_secs() - 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "backwards")]
    fn virtual_clock_rejects_backwards() {
        let c = VirtualClock::new();
        c.advance(2.0);
        c.set(SimTime::from_secs(1.0));
    }

    #[test]
    fn clock_trait_object_usable() {
        let clocks: Vec<Box<dyn Clock>> =
            vec![Box::new(RealClock::new()), Box::new(VirtualClock::new())];
        for c in &clocks {
            let _ = c.now();
        }
    }
}
