//! Identifiers for hosts, servers, clients and requests.
//!
//! All identifiers are small `u64` newtypes so they are cheap to copy, hash
//! and put on the wire. Fresh identifiers are drawn from process-wide atomic
//! counters; deterministic code (the simulator) constructs them explicitly
//! from indices instead.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:expr, $counter:ident) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
        pub struct $name(pub u64);

        static $counter: AtomicU64 = AtomicU64::new(1);

        impl $name {
            /// Allocate a fresh process-unique identifier.
            pub fn fresh() -> Self {
                $name($counter.fetch_add(1, Ordering::Relaxed))
            }

            /// Raw numeric value (wire representation).
            pub fn raw(self) -> u64 {
                self.0
            }
        }

        impl From<u64> for $name {
            fn from(v: u64) -> Self {
                $name(v)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

id_type!(
    /// Identifies a physical host in the NetSolve network (client machines,
    /// server machines and agent machines are all hosts).
    HostId,
    "host-",
    HOST_COUNTER
);

id_type!(
    /// Identifies one computational-server process registered with an agent.
    ServerId,
    "server-",
    SERVER_COUNTER
);

id_type!(
    /// Identifies one client-side request (a single `netsl` call), including
    /// across its retries on different servers.
    RequestId,
    "request-",
    REQUEST_COUNTER
);

id_type!(
    /// Identifies a client process, used by the agent to attribute network
    /// measurements and failure reports.
    ClientId,
    "client-",
    CLIENT_COUNTER
);

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn fresh_ids_are_unique() {
        let ids: HashSet<ServerId> = (0..1000).map(|_| ServerId::fresh()).collect();
        assert_eq!(ids.len(), 1000);
    }

    #[test]
    fn fresh_ids_unique_across_threads() {
        let handles: Vec<_> = (0..8)
            .map(|_| std::thread::spawn(|| (0..500).map(|_| RequestId::fresh()).collect::<Vec<_>>()))
            .collect();
        let mut all = HashSet::new();
        for h in handles {
            for id in h.join().unwrap() {
                assert!(all.insert(id), "duplicate id {id}");
            }
        }
        assert_eq!(all.len(), 4000);
    }

    #[test]
    fn display_includes_prefix() {
        assert_eq!(HostId(7).to_string(), "host-7");
        assert_eq!(ServerId(3).to_string(), "server-3");
        assert_eq!(RequestId(9).to_string(), "request-9");
        assert_eq!(ClientId(2).to_string(), "client-2");
    }

    #[test]
    fn from_raw_roundtrip() {
        let id = HostId::from(42);
        assert_eq!(id.raw(), 42);
    }

    #[test]
    fn ids_order_by_value() {
        assert!(ServerId(1) < ServerId(2));
    }
}
