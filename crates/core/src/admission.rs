//! Unified admission control: queue-depth shed with hysteresis plus
//! deadline-aware early reject.
//!
//! One [`AdmissionPolicy`] object makes every shed/admit decision for a
//! server — and the *same type* runs inside the discrete-event simulator
//! (`netsolve-sim`) and the live `ServerDaemon`, so a policy tuned in a
//! million-client simulation is bit-for-bit the policy production runs.
//! To make that possible the policy is a pure function of its inputs: it
//! never reads a clock (callers pass remaining deadline budget in
//! milliseconds) and never sleeps, so virtual time and wall time drive it
//! identically.
//!
//! Three shed triggers, in decision order:
//!
//! 1. **Expired budget** — the request's deadline was consumed before a
//!    solve slot could be reserved ([`ShedReason::DeadlineExpired`]).
//!    Counted separately from execution-time sheds so operators can tell
//!    "died waiting" from "died computing".
//! 2. **Queue depth with hysteresis** — shedding latches on at
//!    `max_queue_depth` and only releases once the queue drains to
//!    `resume_queue_depth`, so a server hovering at the boundary sheds in
//!    bursts instead of flapping per-request
//!    ([`ShedReason::QueueFull`]).
//! 3. **Unmeetable deadline** — the expected wait (queue depth × an
//!    observed per-problem service-time quantile, tracked in
//!    `netsolve-obs` histograms) already exceeds the remaining budget, so
//!    admitting the request would only waste a slot
//!    ([`ShedReason::DeadlineUnmeetable`]).
//!
//! Every shed carries a `retry_after_ms` hint sized from the same service
//! estimate; the live server folds it into the retryable Busy error
//! detail (see [`format_busy_detail`]) and the client uses it as a floor
//! for its next backoff wait ([`parse_retry_after_ms`]).

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use netsolve_obs::{Counter, Histogram};
use parking_lot::Mutex;

/// Tuning knobs for one server's [`AdmissionPolicy`].
#[derive(Debug, Clone)]
pub struct AdmissionConfig {
    /// Shed once the solve queue (waiting + in service) reaches this
    /// depth.
    pub max_queue_depth: usize,
    /// Hysteresis low watermark: once shedding, keep shedding until the
    /// queue drains to this depth.
    pub resume_queue_depth: usize,
    /// Reject requests whose remaining deadline budget cannot cover the
    /// estimated queue wait plus service time.
    pub deadline_early_reject: bool,
    /// Service-time quantile used for wait estimation (0.9 = plan for
    /// slow-ish solves; lower admits more aggressively).
    pub service_quantile: f64,
    /// Observations of a problem required before its histogram is
    /// trusted for deadline estimates.
    pub min_observations: u64,
    /// Service-seconds guess used for retry hints before any
    /// observations accrue.
    pub fallback_service_secs: f64,
    /// Ceiling on the `retry_after_ms` hint handed to shed clients.
    pub max_retry_hint_ms: u64,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        Self::with_max_queue(16)
    }
}

impl AdmissionConfig {
    /// A config shedding at `depth` with the resume watermark at 3/4 of
    /// it (minimum gap of one so the latch always has room to release).
    pub fn with_max_queue(depth: usize) -> Self {
        let depth = depth.max(1);
        AdmissionConfig {
            max_queue_depth: depth,
            resume_queue_depth: (depth * 3 / 4).min(depth - 1),
            deadline_early_reject: true,
            service_quantile: 0.9,
            min_observations: 8,
            fallback_service_secs: 0.05,
            max_retry_hint_ms: 5_000,
        }
    }
}

/// Why a request was shed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedReason {
    /// The solve queue is at (or hysteresis keeps it treated as at) its
    /// bound.
    QueueFull,
    /// The request's deadline budget was already consumed before a slot
    /// could be reserved.
    DeadlineExpired,
    /// The remaining budget cannot cover the estimated wait + service.
    DeadlineUnmeetable,
}

impl ShedReason {
    /// Stable lowercase name (metrics labels, trace details).
    pub fn name(&self) -> &'static str {
        match self {
            ShedReason::QueueFull => "queue_full",
            ShedReason::DeadlineExpired => "deadline_expired",
            ShedReason::DeadlineUnmeetable => "deadline_unmeetable",
        }
    }
}

/// Outcome of one [`AdmissionPolicy::admit`] call.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AdmissionDecision {
    /// Take the request.
    Admit,
    /// Refuse the request.
    Shed {
        /// Which trigger fired.
        reason: ShedReason,
        /// How long the client should wait before retrying, in
        /// milliseconds (0 = no point retrying here, the budget is gone).
        retry_after_ms: u64,
    },
}

/// The admission decision engine. See the module docs for the design.
///
/// Thread-safe and cheap: one atomic for the hysteresis latch, a short
/// mutex for the per-problem histogram map (instrument `Arc`s are cached
/// by callers on hot paths via [`AdmissionPolicy::observe_service`]'s
/// internal map), counters for every decision outcome.
pub struct AdmissionPolicy {
    config: AdmissionConfig,
    shedding: AtomicBool,
    service: Mutex<HashMap<String, Arc<Histogram>>>,
    decisions: Counter,
    shed_queue_full: Counter,
    shed_deadline_expired: Counter,
    shed_deadline_unmeetable: Counter,
}

impl AdmissionPolicy {
    /// A policy with fresh (empty) service-time history.
    pub fn new(config: AdmissionConfig) -> Self {
        AdmissionPolicy {
            config,
            shedding: AtomicBool::new(false),
            service: Mutex::new(HashMap::new()),
            decisions: Counter::default(),
            shed_queue_full: Counter::default(),
            shed_deadline_expired: Counter::default(),
            shed_deadline_unmeetable: Counter::default(),
        }
    }

    /// The config this policy runs.
    pub fn config(&self) -> &AdmissionConfig {
        &self.config
    }

    /// Record an observed service time for `problem` (seconds). Both the
    /// simulator (virtual service draws) and the live server (measured
    /// solve seconds) feed this after every completed solve.
    pub fn observe_service(&self, problem: &str, secs: f64) {
        let hist = {
            let mut map = self.service.lock();
            Arc::clone(map.entry(problem.to_string()).or_default())
        };
        hist.record_secs(secs);
    }

    /// The service-time estimate (the configured quantile) for `problem`,
    /// or `None` until `min_observations` samples accrued. Log-bucket
    /// quantiles are within 2x of the true sample — good enough for
    /// shed/admit decisions, and identical in sim and live by
    /// construction.
    pub fn service_estimate_secs(&self, problem: &str) -> Option<f64> {
        let hist = {
            let map = self.service.lock();
            Arc::clone(map.get(problem)?)
        };
        if hist.count() < self.config.min_observations {
            return None;
        }
        Some(hist.snapshot(problem).quantile_secs(self.config.service_quantile))
    }

    /// Decide one request. `queue_depth` is the solve queue (waiting +
    /// in service) the request would join; `remaining_budget_ms` is what
    /// is left of the client's deadline (`None` = no deadline). Pure in
    /// time: the caller supplies all clock-derived inputs.
    pub fn admit(
        &self,
        problem: &str,
        queue_depth: usize,
        remaining_budget_ms: Option<u64>,
    ) -> AdmissionDecision {
        self.decisions.inc();
        // 1. Budget already gone: nobody is waiting for this result.
        if remaining_budget_ms == Some(0) {
            self.shed_deadline_expired.inc();
            return AdmissionDecision::Shed {
                reason: ShedReason::DeadlineExpired,
                retry_after_ms: 0,
            };
        }
        let est = self
            .service_estimate_secs(problem)
            .unwrap_or(self.config.fallback_service_secs)
            .max(1e-6);
        // 2. Queue-depth shed with hysteresis.
        let latched = self.shedding.load(Ordering::Acquire);
        let shed_on_depth = if latched {
            if queue_depth <= self.config.resume_queue_depth {
                self.shedding.store(false, Ordering::Release);
                false
            } else {
                true
            }
        } else if queue_depth >= self.config.max_queue_depth {
            self.shedding.store(true, Ordering::Release);
            true
        } else {
            false
        };
        if shed_on_depth {
            self.shed_queue_full.inc();
            // Hint: roughly how long until the queue drains back to the
            // resume watermark at one service time per slot.
            let excess = queue_depth.saturating_sub(self.config.resume_queue_depth).max(1);
            return AdmissionDecision::Shed {
                reason: ShedReason::QueueFull,
                retry_after_ms: self.hint_ms(excess as f64 * est),
            };
        }
        // 3. Deadline-aware early reject: estimated wait + service vs
        // the remaining budget. Only with real observations — guessing
        // here would shed healthy traffic on cold start.
        if self.config.deadline_early_reject {
            if let Some(budget_ms) = remaining_budget_ms {
                if self.service_estimate_secs(problem).is_some() {
                    let expected_ms = (queue_depth as f64 + 1.0) * est * 1e3;
                    if expected_ms > budget_ms as f64 {
                        self.shed_deadline_unmeetable.inc();
                        return AdmissionDecision::Shed {
                            reason: ShedReason::DeadlineUnmeetable,
                            retry_after_ms: self.hint_ms(expected_ms / 1e3),
                        };
                    }
                }
            }
        }
        AdmissionDecision::Admit
    }

    fn hint_ms(&self, secs: f64) -> u64 {
        ((secs * 1e3).ceil() as u64).clamp(1, self.config.max_retry_hint_ms)
    }

    /// Whether the hysteresis latch is currently shedding.
    pub fn is_shedding(&self) -> bool {
        self.shedding.load(Ordering::Acquire)
    }

    /// Total admit/shed decisions made.
    pub fn decisions(&self) -> u64 {
        self.decisions.get()
    }

    /// Total sheds, all reasons.
    pub fn sheds(&self) -> u64 {
        self.sheds_queue_full() + self.sheds_deadline_expired() + self.sheds_deadline_unmeetable()
    }

    /// Sheds due to queue depth (incl. hysteresis holds).
    pub fn sheds_queue_full(&self) -> u64 {
        self.shed_queue_full.get()
    }

    /// Sheds of requests whose budget expired before a slot was free.
    pub fn sheds_deadline_expired(&self) -> u64 {
        self.shed_deadline_expired.get()
    }

    /// Early rejects of deadlines the queue could not meet.
    pub fn sheds_deadline_unmeetable(&self) -> u64 {
        self.shed_deadline_unmeetable.get()
    }

    /// Fraction of decisions that shed (0 when no decisions yet).
    pub fn shed_rate(&self) -> f64 {
        let d = self.decisions();
        if d == 0 {
            0.0
        } else {
            self.sheds() as f64 / d as f64
        }
    }
}

/// The detail string a shedding server puts in its retryable Busy error.
/// Keep in sync with [`parse_retry_after_ms`]: the `retry_after_ms=N`
/// token is the wire contract the client backoff path keys on.
pub fn format_busy_detail(reason: ShedReason, queue_depth: usize, retry_after_ms: u64) -> String {
    format!(
        "server overloaded ({}, queue depth {queue_depth}): retry_after_ms={retry_after_ms}",
        reason.name()
    )
}

/// Extract the `retry_after_ms=N` hint from an error detail, if present.
pub fn parse_retry_after_ms(detail: &str) -> Option<u64> {
    let idx = detail.find("retry_after_ms=")?;
    let rest = &detail[idx + "retry_after_ms=".len()..];
    let digits: String = rest.chars().take_while(|c| c.is_ascii_digit()).collect();
    digits.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admits_under_the_bound() {
        let p = AdmissionPolicy::new(AdmissionConfig::with_max_queue(4));
        for depth in 0..4 {
            assert_eq!(p.admit("dgesv", depth, None), AdmissionDecision::Admit);
        }
        assert_eq!(p.sheds(), 0);
        assert_eq!(p.decisions(), 4);
    }

    #[test]
    fn sheds_at_bound_with_hysteresis() {
        let p = AdmissionPolicy::new(AdmissionConfig::with_max_queue(4)); // resume at 3
        assert!(matches!(
            p.admit("dgesv", 4, None),
            AdmissionDecision::Shed { reason: ShedReason::QueueFull, .. }
        ));
        assert!(p.is_shedding());
        // Latched: depth back under max but above resume still sheds.
        assert!(matches!(p.admit("dgesv", 4, None), AdmissionDecision::Shed { .. }));
        // Wait: resume is 3; depth 4 > 3, keeps shedding. Drain to 3 releases.
        assert_eq!(p.admit("dgesv", 3, None), AdmissionDecision::Admit);
        assert!(!p.is_shedding());
        assert_eq!(p.sheds_queue_full(), 2);
    }

    #[test]
    fn hysteresis_window_sheds_between_watermarks() {
        // max 8, resume 6: depth 7 admits on the way up, sheds on the way
        // down (after the latch set at 8).
        let p = AdmissionPolicy::new(AdmissionConfig::with_max_queue(8));
        assert_eq!(p.admit("x", 7, None), AdmissionDecision::Admit);
        assert!(matches!(p.admit("x", 8, None), AdmissionDecision::Shed { .. }));
        assert!(matches!(p.admit("x", 7, None), AdmissionDecision::Shed { .. }));
        assert_eq!(p.admit("x", 6, None), AdmissionDecision::Admit);
    }

    #[test]
    fn expired_budget_sheds_distinctly() {
        let p = AdmissionPolicy::new(AdmissionConfig::default());
        match p.admit("dgesv", 0, Some(0)) {
            AdmissionDecision::Shed { reason, retry_after_ms } => {
                assert_eq!(reason, ShedReason::DeadlineExpired);
                assert_eq!(retry_after_ms, 0);
            }
            other => panic!("expected shed, got {other:?}"),
        }
        assert_eq!(p.sheds_deadline_expired(), 1);
        assert_eq!(p.sheds_queue_full(), 0);
    }

    #[test]
    fn deadline_early_reject_uses_observed_service_times() {
        let mut cfg = AdmissionConfig::with_max_queue(64);
        cfg.min_observations = 4;
        let p = AdmissionPolicy::new(cfg);
        // No history yet: a tight deadline is still admitted (no guessing).
        assert_eq!(p.admit("dgesv", 10, Some(5)), AdmissionDecision::Admit);
        for _ in 0..8 {
            p.observe_service("dgesv", 0.100); // ~100 ms solves
        }
        // 10 queued × ~100 ms each >> 5 ms budget: early reject.
        match p.admit("dgesv", 10, Some(5)) {
            AdmissionDecision::Shed { reason, retry_after_ms } => {
                assert_eq!(reason, ShedReason::DeadlineUnmeetable);
                assert!(retry_after_ms >= 100, "hint {retry_after_ms}");
            }
            other => panic!("expected shed, got {other:?}"),
        }
        // A roomy budget at the same depth is admitted.
        assert_eq!(p.admit("dgesv", 10, Some(60_000)), AdmissionDecision::Admit);
        // Other problems have their own histograms.
        assert!(p.service_estimate_secs("fft").is_none());
        assert_eq!(p.sheds_deadline_unmeetable(), 1);
    }

    #[test]
    fn retry_hint_scales_with_excess_depth() {
        let mut cfg = AdmissionConfig::with_max_queue(4);
        cfg.min_observations = 1;
        let p = AdmissionPolicy::new(cfg);
        p.observe_service("x", 0.050);
        let shallow = match p.admit("x", 4, None) {
            AdmissionDecision::Shed { retry_after_ms, .. } => retry_after_ms,
            _ => panic!(),
        };
        let deep = match p.admit("x", 40, None) {
            AdmissionDecision::Shed { retry_after_ms, .. } => retry_after_ms,
            _ => panic!(),
        };
        assert!(deep > shallow, "deep {deep} vs shallow {shallow}");
        assert!(deep <= p.config().max_retry_hint_ms);
    }

    #[test]
    fn busy_detail_roundtrips_the_hint() {
        let detail = format_busy_detail(ShedReason::QueueFull, 9, 230);
        assert!(detail.contains("queue depth 9"), "{detail}");
        assert_eq!(parse_retry_after_ms(&detail), Some(230));
        assert_eq!(parse_retry_after_ms("no hint here"), None);
        assert_eq!(parse_retry_after_ms("retry_after_ms="), None);
        assert_eq!(parse_retry_after_ms("x retry_after_ms=12y"), Some(12));
    }

    #[test]
    fn shed_rate_closes() {
        let p = AdmissionPolicy::new(AdmissionConfig::with_max_queue(1));
        assert_eq!(p.shed_rate(), 0.0);
        let _ = p.admit("x", 0, None); // admit
        let _ = p.admit("x", 5, None); // shed
        assert!((p.shed_rate() - 0.5).abs() < 1e-12);
        assert_eq!(p.decisions(), 2);
        assert_eq!(p.sheds(), 1);
    }
}
