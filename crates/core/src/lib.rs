//! # netsolve-core
//!
//! Shared kernel of the netsolve-rs workspace — the Rust reproduction of
//! *NetSolve: A Network Server for Solving Computational Science Problems*
//! (Casanova & Dongarra, SC'96).
//!
//! This crate defines the vocabulary every other crate speaks:
//!
//! * [`data::DataObject`] — the values a NetSolve call carries (scalars,
//!   vectors, dense/sparse matrices, strings) and their wire sizes;
//! * [`problem::ProblemSpec`] — what a "problem" is: typed signature plus
//!   the `a·n^b` [`problem::Complexity`] cost model the agent's predictor
//!   uses;
//! * [`error::NetSolveError`] — the status-code catalogue;
//! * [`clock`] — real and virtual time behind one [`clock::Clock`] trait so
//!   workload-aging logic is testable deterministically;
//! * [`rng::Rng64`] — seeded randomness for reproducible experiments;
//! * [`stats`] — EWMA/percentile/histogram helpers for the agent and the
//!   experiment harness.

#![warn(missing_docs)]

pub mod admission;
pub mod clock;
pub mod config;
pub mod data;
pub mod error;
pub mod ids;
pub mod matrix;
pub mod problem;
pub mod rng;
pub mod sparse;
pub mod stats;
pub mod units;

pub use admission::{AdmissionConfig, AdmissionDecision, AdmissionPolicy, ShedReason};
pub use clock::{Clock, RealClock, SimTime, VirtualClock};
pub use data::{DataObject, ObjectKind};
pub use error::{NetSolveError, Result};
pub use ids::{ClientId, HostId, RequestId, ServerId};
pub use matrix::Matrix;
pub use problem::{Complexity, ObjectSpec, ProblemSpec, RequestShape};
pub use rng::Rng64;
pub use sparse::CsrMatrix;
