//! Deterministic randomness helpers.
//!
//! Every stochastic component (workload generators, failure injection, link
//! jitter) takes an explicit seeded RNG so experiments are exactly
//! reproducible run-to-run. We standardize on a small xorshift-based
//! generator implemented here (no reliance on `rand`'s unspecified StdRng
//! algorithm, which may change across versions) plus the distribution
//! samplers the simulator needs.

/// SplitMix64: tiny, fast, and excellent for seeding/streaming use.
///
/// Passes BigCrush when used as a 64-bit generator; we use it both directly
/// and to derive independent child streams.
#[derive(Debug, Clone)]
pub struct Rng64 {
    state: u64,
}

impl Rng64 {
    /// Create a generator from a seed. Equal seeds give equal streams.
    pub fn new(seed: u64) -> Self {
        Rng64 { state: seed.wrapping_add(0x9E37_79B9_7F4A_7C15) }
    }

    /// Derive an independent child stream; children with different `stream`
    /// values are decorrelated from each other and the parent.
    pub fn fork(&mut self, stream: u64) -> Rng64 {
        let mix = self.next_u64() ^ stream.wrapping_mul(0xA24B_AED4_963E_E407);
        Rng64::new(mix)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 high bits -> uniform double in [0,1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `[lo, hi)`.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.next_f64()
    }

    /// Uniform integer in `[0, n)`. Panics if `n == 0`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0)");
        // Rejection-free multiply-shift; bias is negligible for our n << 2^64.
        ((self.next_u64() as u128 * n as u128) >> 64) as usize
    }

    /// Bernoulli trial with success probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Exponentially distributed value with the given `rate` (mean `1/rate`).
    /// Used for Poisson-process inter-arrival times.
    pub fn exponential(&mut self, rate: f64) -> f64 {
        assert!(rate > 0.0, "rate must be positive");
        // Avoid ln(0): 1 - U is in (0, 1].
        -(1.0 - self.next_f64()).ln() / rate
    }

    /// Standard normal via Box–Muller.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        let u1 = 1.0 - self.next_f64(); // (0,1]
        let u2 = self.next_f64();
        let mag = (-2.0 * u1.ln()).sqrt();
        mean + std_dev * mag * (2.0 * std::f64::consts::PI * u2).cos()
    }

    /// Log-normal: exp of a normal with the given *underlying* parameters.
    pub fn log_normal(&mut self, mu: f64, sigma: f64) -> f64 {
        self.normal(mu, sigma).exp()
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below(i + 1);
            xs.swap(i, j);
        }
    }

    /// Pick a uniformly random element; `None` on an empty slice.
    pub fn choose<'a, T>(&mut self, xs: &'a [T]) -> Option<&'a T> {
        if xs.is_empty() {
            None
        } else {
            Some(&xs[self.below(xs.len())])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Rng64::new(42);
        let mut b = Rng64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng64::new(1);
        let mut b = Rng64::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Rng64::new(7);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn below_is_in_range_and_covers() {
        let mut r = Rng64::new(9);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[r.below(10)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn exponential_mean_close_to_inverse_rate() {
        let mut r = Rng64::new(123);
        let rate = 4.0;
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| r.exponential(rate)).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.25).abs() < 0.01, "mean={mean}");
    }

    #[test]
    fn normal_moments() {
        let mut r = Rng64::new(321);
        let n = 100_000;
        let xs: Vec<f64> = (0..n).map(|_| r.normal(3.0, 2.0)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.05, "mean={mean}");
        assert!((var - 4.0).abs() < 0.15, "var={var}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = Rng64::new(5);
        let mut xs: Vec<u32> = (0..100).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn choose_handles_empty() {
        let mut r = Rng64::new(5);
        let empty: [u8; 0] = [];
        assert!(r.choose(&empty).is_none());
        assert_eq!(r.choose(&[7]), Some(&7));
    }

    #[test]
    fn fork_streams_decorrelated() {
        let mut parent = Rng64::new(10);
        let mut c1 = parent.fork(1);
        let mut c2 = parent.fork(2);
        let matches = (0..64).filter(|_| c1.next_u64() == c2.next_u64()).count();
        assert_eq!(matches, 0);
    }

    #[test]
    fn chance_extremes() {
        let mut r = Rng64::new(77);
        assert!((0..100).all(|_| !r.chance(0.0)));
        assert!((0..100).all(|_| r.chance(1.0 + 1e-9)));
    }
}
