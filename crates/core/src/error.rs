//! Error and status codes for the NetSolve system.
//!
//! The original NetSolve C library reported status through integer codes
//! (`NetSolveOK`, `NetSolveProblemNotFound`, ...). We mirror that catalogue as
//! a rich Rust enum so every layer (client, agent, server, transport) speaks
//! the same error vocabulary, and keep a stable numeric code for wire
//! transmission.

use std::fmt;

/// Every failure the NetSolve system can report.
///
/// The numeric codes (see [`NetSolveError::code`]) are part of the wire
/// protocol: a server replies to a failed request with the code, and the
/// client reconstructs the enum with [`NetSolveError::from_code`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetSolveError {
    /// The requested problem name is not known to the agent or server.
    ProblemNotFound(String),
    /// No server currently advertises the requested problem.
    NoServerAvailable(String),
    /// A server was selected but could not be reached.
    ServerUnreachable(String),
    /// The server accepted the request but failed while computing.
    ExecutionFailed(String),
    /// Input objects do not match the problem's declared signature.
    BadArguments(String),
    /// Malformed bytes on the wire (framing, marshaling, version).
    Protocol(String),
    /// Underlying transport error (socket, channel).
    Transport(String),
    /// The agent rejected or could not parse a registration.
    Registration(String),
    /// A numerical routine failed (singular matrix, no convergence, ...).
    Numerical(String),
    /// Problem description language parse/validation failure.
    Description(String),
    /// An operation did not finish within its deadline.
    Timeout(String),
    /// A non-blocking request handle was queried after being consumed.
    InvalidHandle(String),
    /// Resource limits exceeded (queue full, payload too large).
    Resource(String),
    /// Internal invariant violation; indicates a bug.
    Internal(String),
    /// A frame arrived damaged (CRC mismatch). Unlike [`Protocol`], which
    /// means the peer speaks the wrong dialect, corruption is transient
    /// (a bad link, an injected fault) and the request is safe to retry.
    ///
    /// [`Protocol`]: NetSolveError::Protocol
    Corrupt(String),
}

impl NetSolveError {
    /// Stable numeric code used on the wire.
    pub fn code(&self) -> u32 {
        match self {
            NetSolveError::ProblemNotFound(_) => 1,
            NetSolveError::NoServerAvailable(_) => 2,
            NetSolveError::ServerUnreachable(_) => 3,
            NetSolveError::ExecutionFailed(_) => 4,
            NetSolveError::BadArguments(_) => 5,
            NetSolveError::Protocol(_) => 6,
            NetSolveError::Transport(_) => 7,
            NetSolveError::Registration(_) => 8,
            NetSolveError::Numerical(_) => 9,
            NetSolveError::Description(_) => 10,
            NetSolveError::Timeout(_) => 11,
            NetSolveError::InvalidHandle(_) => 12,
            NetSolveError::Resource(_) => 13,
            NetSolveError::Internal(_) => 14,
            NetSolveError::Corrupt(_) => 15,
        }
    }

    /// Reconstruct an error from its wire code and detail message.
    ///
    /// Unknown codes map to [`NetSolveError::Internal`] so that a newer peer
    /// never crashes an older one.
    pub fn from_code(code: u32, detail: String) -> Self {
        match code {
            1 => NetSolveError::ProblemNotFound(detail),
            2 => NetSolveError::NoServerAvailable(detail),
            3 => NetSolveError::ServerUnreachable(detail),
            4 => NetSolveError::ExecutionFailed(detail),
            5 => NetSolveError::BadArguments(detail),
            6 => NetSolveError::Protocol(detail),
            7 => NetSolveError::Transport(detail),
            8 => NetSolveError::Registration(detail),
            9 => NetSolveError::Numerical(detail),
            10 => NetSolveError::Description(detail),
            11 => NetSolveError::Timeout(detail),
            12 => NetSolveError::InvalidHandle(detail),
            13 => NetSolveError::Resource(detail),
            15 => NetSolveError::Corrupt(detail),
            _ => NetSolveError::Internal(detail),
        }
    }

    /// Human-oriented detail string carried by every variant.
    pub fn detail(&self) -> &str {
        match self {
            NetSolveError::ProblemNotFound(s)
            | NetSolveError::NoServerAvailable(s)
            | NetSolveError::ServerUnreachable(s)
            | NetSolveError::ExecutionFailed(s)
            | NetSolveError::BadArguments(s)
            | NetSolveError::Protocol(s)
            | NetSolveError::Transport(s)
            | NetSolveError::Registration(s)
            | NetSolveError::Numerical(s)
            | NetSolveError::Description(s)
            | NetSolveError::Timeout(s)
            | NetSolveError::InvalidHandle(s)
            | NetSolveError::Resource(s)
            | NetSolveError::Internal(s)
            | NetSolveError::Corrupt(s) => s,
        }
    }

    /// Whether the client's fault-tolerance loop should retry the request on
    /// a different server. Errors caused by the request itself (bad
    /// arguments, unknown problem) are not retryable; infrastructure errors
    /// are. `NoServerAvailable` counts as retryable: unlike an unknown
    /// problem it is a transient pool condition — down-cooldowns expire,
    /// heartbeats re-admit recovered servers, and new servers register.
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            NetSolveError::NoServerAvailable(_)
                | NetSolveError::ServerUnreachable(_)
                | NetSolveError::ExecutionFailed(_)
                | NetSolveError::Transport(_)
                | NetSolveError::Timeout(_)
                | NetSolveError::Resource(_)
                | NetSolveError::Corrupt(_)
        )
    }

    /// Short machine-friendly name of the variant.
    pub fn kind(&self) -> &'static str {
        match self {
            NetSolveError::ProblemNotFound(_) => "problem-not-found",
            NetSolveError::NoServerAvailable(_) => "no-server-available",
            NetSolveError::ServerUnreachable(_) => "server-unreachable",
            NetSolveError::ExecutionFailed(_) => "execution-failed",
            NetSolveError::BadArguments(_) => "bad-arguments",
            NetSolveError::Protocol(_) => "protocol",
            NetSolveError::Transport(_) => "transport",
            NetSolveError::Registration(_) => "registration",
            NetSolveError::Numerical(_) => "numerical",
            NetSolveError::Description(_) => "description",
            NetSolveError::Timeout(_) => "timeout",
            NetSolveError::InvalidHandle(_) => "invalid-handle",
            NetSolveError::Resource(_) => "resource",
            NetSolveError::Internal(_) => "internal",
            NetSolveError::Corrupt(_) => "corrupt",
        }
    }
}

impl fmt::Display for NetSolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.kind(), self.detail())
    }
}

impl std::error::Error for NetSolveError {}

impl From<std::io::Error> for NetSolveError {
    fn from(e: std::io::Error) -> Self {
        match e.kind() {
            // A socket read deadline expiring surfaces as WouldBlock on
            // Unix and TimedOut on Windows; both are our Timeout.
            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => {
                NetSolveError::Timeout(e.to_string())
            }
            _ => NetSolveError::Transport(e.to_string()),
        }
    }
}

/// Convenience alias used across every crate in the workspace.
pub type Result<T> = std::result::Result<T, NetSolveError>;

#[cfg(test)]
mod tests {
    use super::*;

    fn all_variants() -> Vec<NetSolveError> {
        vec![
            NetSolveError::ProblemNotFound("p".into()),
            NetSolveError::NoServerAvailable("p".into()),
            NetSolveError::ServerUnreachable("h".into()),
            NetSolveError::ExecutionFailed("x".into()),
            NetSolveError::BadArguments("a".into()),
            NetSolveError::Protocol("m".into()),
            NetSolveError::Transport("t".into()),
            NetSolveError::Registration("r".into()),
            NetSolveError::Numerical("n".into()),
            NetSolveError::Description("d".into()),
            NetSolveError::Timeout("t".into()),
            NetSolveError::InvalidHandle("h".into()),
            NetSolveError::Resource("r".into()),
            NetSolveError::Internal("i".into()),
            NetSolveError::Corrupt("c".into()),
        ]
    }

    #[test]
    fn codes_are_unique() {
        let mut codes: Vec<u32> = all_variants().iter().map(|e| e.code()).collect();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), all_variants().len());
    }

    #[test]
    fn code_roundtrip_preserves_variant() {
        for e in all_variants() {
            let back = NetSolveError::from_code(e.code(), e.detail().to_string());
            assert_eq!(e, back);
        }
    }

    #[test]
    fn unknown_code_maps_to_internal() {
        let e = NetSolveError::from_code(9999, "future".into());
        assert_eq!(e, NetSolveError::Internal("future".into()));
    }

    #[test]
    fn retryability_split() {
        assert!(NetSolveError::ServerUnreachable("h".into()).is_retryable());
        assert!(NetSolveError::Timeout("t".into()).is_retryable());
        assert!(NetSolveError::Corrupt("crc".into()).is_retryable());
        assert!(!NetSolveError::BadArguments("a".into()).is_retryable());
        assert!(!NetSolveError::ProblemNotFound("p".into()).is_retryable());
        assert!(!NetSolveError::Protocol("version".into()).is_retryable());
    }

    #[test]
    fn display_contains_kind_and_detail() {
        let e = NetSolveError::Numerical("singular matrix".into());
        let s = e.to_string();
        assert!(s.contains("numerical"));
        assert!(s.contains("singular matrix"));
    }
}
