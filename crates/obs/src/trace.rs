//! Typed distributed-tracing spans keyed by a wire-propagated `trace_id`.
//!
//! The [`Tracer`] stores completed [`Span`]s: each has a 128-bit trace
//! identity (minted once per logical call by the client and carried on
//! the wire so agent and server spans join the same trace), a parent
//! span id for causal stitching, and start/end timestamps anchored to
//! the unix epoch so spans recorded in different processes line up on
//! one timeline. Component and phase names are `&'static str`, so the
//! hot path allocates nothing unless a free-form detail string is
//! attached.
//!
//! Retention is per-trace: a bounded span budget evicts whole traces
//! oldest-first, except traces that contained a slow span (duration at
//! or above the slow threshold), which are *pinned* and survive ring
//! pressure up to a separate pinned cap. Lookup by request id is an
//! index hit, not a ring scan.
//!
//! The tracer doubles as the request-id uniqueness monitor — a shared
//! tracer registers every id a client mints and counts collisions,
//! which is how the "two concurrent clients must never submit the same
//! `request_id`" invariant is asserted at trace level rather than
//! hoped for.

use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

use parking_lot::Mutex;

/// Default span budget: enough for a soak test's tail without
/// unbounded growth in long-lived daemons.
const DEFAULT_CAPACITY: usize = 1024;

/// Spans at or above this duration pin their whole trace against
/// eviction (see [`Tracer::with_slow_threshold`]).
const DEFAULT_SLOW_THRESHOLD: Duration = Duration::from_millis(250);

/// At most this many slow traces stay pinned; beyond it the oldest
/// pinned trace is evicted so a burst of slow requests cannot pin the
/// whole ring forever.
const PINNED_TRACE_CAP: usize = 64;

/// `splitmix64` mixing step — the same generator the client uses for
/// request-id lanes; good enough to make per-tracer span-id streams
/// and trace ids collision-free in practice.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Multiplicative hasher for the tracer's integer-keyed maps. Trace and
/// span ids are splitmix-whitened at mint time, so SipHash's DoS
/// resistance buys nothing here while its per-lookup cost lands on the
/// per-span hot path (every `record` touches the trace map under the
/// lock — see the r9 overhead experiment).
#[derive(Default)]
struct IdHasher(u64);

impl std::hash::Hasher for IdHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            self.0 = splitmix64(self.0 ^ u64::from_le_bytes(word));
        }
    }

    fn write_u64(&mut self, n: u64) {
        self.0 = splitmix64(self.0 ^ n);
    }

    fn write_u128(&mut self, n: u128) {
        self.0 = splitmix64(self.0 ^ n as u64 ^ splitmix64((n >> 64) as u64));
    }
}

type IdHashBuilder = std::hash::BuildHasherDefault<IdHasher>;

/// The identity a span inherits: which trace it belongs to, which span
/// caused it, and which protocol request it serves.
///
/// A zero `trace_id` means "traceless" — the span is still recorded
/// (heartbeats, accepts with no request attached) but never stitched
/// into a causal timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SpanContext {
    /// 128-bit trace identity, minted once per logical client call.
    pub trace_id: u128,
    /// Span id of the causal parent (0 = root of the trace).
    pub parent_span: u64,
    /// Protocol `request_id` the trace serves (0 if none yet).
    pub request_id: u64,
}

impl SpanContext {
    /// The traceless context: spans recorded under it are retained and
    /// queryable but belong to no stitched timeline.
    pub const NONE: SpanContext = SpanContext { trace_id: 0, parent_span: 0, request_id: 0 };

    /// A context for children of the span identified by `span_id`,
    /// inside the same trace and request.
    pub fn child_of(&self, span_id: u64) -> SpanContext {
        SpanContext { trace_id: self.trace_id, parent_span: span_id, request_id: self.request_id }
    }
}

/// One completed span as stored in-process: names are static strings,
/// so cloning one allocates only for the optional detail.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    /// Global sequence number (monotone per tracer).
    pub seq: u64,
    /// Trace this span belongs to (0 = traceless).
    pub trace_id: u128,
    /// This span's own id (unique per tracer, randomized start so ids
    /// from different processes do not collide when stitched).
    pub span_id: u64,
    /// Causal parent span id (0 = root).
    pub parent_span: u64,
    /// Protocol request id (0 if none).
    pub request_id: u64,
    /// Component that recorded it (`"client"`, `"server"`, `"agent"`).
    pub component: &'static str,
    /// Phase name, e.g. `"connect"`, `"solve"`, `"backoff"`.
    pub phase: &'static str,
    /// Span start, nanoseconds since the unix epoch.
    pub start_unix_nanos: u64,
    /// Span end, nanoseconds since the unix epoch.
    pub end_unix_nanos: u64,
    /// Free-form detail (empty = none; empty allocates nothing).
    pub detail: String,
}

impl Span {
    /// Wall-clock duration of the span.
    pub fn duration(&self) -> Duration {
        Duration::from_nanos(self.end_unix_nanos.saturating_sub(self.start_unix_nanos))
    }

    /// The owned-string form used on the wire and in dumps.
    pub fn to_record(&self) -> SpanRecord {
        SpanRecord {
            trace_id: self.trace_id,
            span_id: self.span_id,
            parent_span: self.parent_span,
            request_id: self.request_id,
            component: self.component.to_string(),
            phase: self.phase.to_string(),
            start_unix_nanos: self.start_unix_nanos,
            end_unix_nanos: self.end_unix_nanos,
            detail: self.detail.clone(),
        }
    }
}

/// A span in owned-string form: what `TraceReply` carries and what
/// client-side dump files hold, so spans scraped from remote processes
/// (whose name literals are not in this process) stitch uniformly.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SpanRecord {
    /// Trace this span belongs to (0 = traceless).
    pub trace_id: u128,
    /// This span's own id.
    pub span_id: u64,
    /// Causal parent span id (0 = root).
    pub parent_span: u64,
    /// Protocol request id (0 if none).
    pub request_id: u64,
    /// Component that recorded it.
    pub component: String,
    /// Phase name.
    pub phase: String,
    /// Span start, nanoseconds since the unix epoch.
    pub start_unix_nanos: u64,
    /// Span end, nanoseconds since the unix epoch.
    pub end_unix_nanos: u64,
    /// Free-form detail (empty = none).
    pub detail: String,
}

impl SpanRecord {
    /// Span duration in nanoseconds.
    pub fn duration_nanos(&self) -> u64 {
        self.end_unix_nanos.saturating_sub(self.start_unix_nanos)
    }

    /// One-line dump form: tab-separated fields, detail escaped, used
    /// by client-side trace dumps that `netsl-trace` reads back.
    pub fn to_line(&self) -> String {
        let detail: String = self
            .detail
            .chars()
            .flat_map(|c| match c {
                '\\' => vec!['\\', '\\'],
                '\t' => vec!['\\', 't'],
                '\n' => vec!['\\', 'n'],
                c => vec![c],
            })
            .collect();
        format!(
            "{:032x}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}",
            self.trace_id,
            self.span_id,
            self.parent_span,
            self.request_id,
            self.component,
            self.phase,
            self.start_unix_nanos,
            self.end_unix_nanos,
            detail,
        )
    }

    /// Parse one dump line written by [`SpanRecord::to_line`].
    pub fn from_line(line: &str) -> Option<SpanRecord> {
        let mut parts = line.split('\t');
        let trace_id = u128::from_str_radix(parts.next()?, 16).ok()?;
        let span_id = parts.next()?.parse().ok()?;
        let parent_span = parts.next()?.parse().ok()?;
        let request_id = parts.next()?.parse().ok()?;
        let component = parts.next()?.to_string();
        let phase = parts.next()?.to_string();
        let start_unix_nanos = parts.next()?.parse().ok()?;
        let end_unix_nanos = parts.next()?.parse().ok()?;
        let escaped = parts.next().unwrap_or("");
        let mut detail = String::new();
        let mut chars = escaped.chars();
        while let Some(c) = chars.next() {
            if c == '\\' {
                match chars.next() {
                    Some('t') => detail.push('\t'),
                    Some('n') => detail.push('\n'),
                    Some('\\') => detail.push('\\'),
                    Some(other) => detail.push(other),
                    None => break,
                }
            } else {
                detail.push(c);
            }
        }
        Some(SpanRecord {
            trace_id,
            span_id,
            parent_span,
            request_id,
            component,
            phase,
            start_unix_nanos,
            end_unix_nanos,
            detail,
        })
    }
}

/// A running span: holds the minted span id and the start instant.
/// Finish it with [`Tracer::record`]; its id can be handed to children
/// (and onto the wire) before the span completes.
#[derive(Debug, Clone, Copy)]
pub struct SpanTimer {
    span_id: u64,
    start: Instant,
}

impl SpanTimer {
    /// The minted span id — use it as the parent of child spans and as
    /// the wire-propagated parent span id.
    pub fn span_id(&self) -> u64 {
        self.span_id
    }

    /// When the span started.
    pub fn started_at(&self) -> Instant {
        self.start
    }
}

struct TraceBuf {
    spans: Vec<Span>,
    pinned: bool,
}

struct TraceInner {
    next_seq: u64,
    traces: HashMap<u128, TraceBuf, IdHashBuilder>,
    /// Unpinned traces in insertion order (may hold stale ids).
    order: VecDeque<u128>,
    /// Pinned traces in pinning order.
    pinned_order: VecDeque<u128>,
    total_spans: usize,
    capacity: usize,
    slow_threshold: Duration,
    by_request: HashMap<u64, u128, IdHashBuilder>,
    seen_requests: HashSet<u64, IdHashBuilder>,
    collisions: u64,
}

impl TraceInner {
    fn evict_trace(&mut self, id: u128) {
        if let Some(buf) = self.traces.remove(&id) {
            self.total_spans -= buf.spans.len();
            for span in &buf.spans {
                if span.request_id != 0 && self.by_request.get(&span.request_id) == Some(&id) {
                    self.by_request.remove(&span.request_id);
                }
            }
        }
    }

    /// Evict oldest unpinned traces (never `keep`, the trace just
    /// written to) until the span budget holds again.
    ///
    /// The traceless bucket (trace 0) gets no such protection — every
    /// traceless span (heartbeats, accepts, chaos fault points) shares
    /// it, so shielding it as the most-recently-written trace would let
    /// an idle daemon recording only heartbeats grow without bound.
    /// Instead it is trimmed as a ring: oldest spans dropped first,
    /// newest retained.
    fn enforce_budget(&mut self, keep: u128) {
        let mut spare = None;
        let mut requeue_traceless = false;
        while self.total_spans > self.capacity {
            match self.order.pop_front() {
                Some(0) => {
                    let excess = self.total_spans - self.capacity;
                    if let Some(buf) = self.traces.get_mut(&0) {
                        let n = excess.min(buf.spans.len());
                        buf.spans.drain(..n);
                        self.total_spans -= n;
                        if buf.spans.is_empty() {
                            self.traces.remove(&0);
                        } else {
                            requeue_traceless = true;
                        }
                    }
                }
                Some(id) if id == keep => spare = Some(id),
                Some(id) => {
                    if self.traces.get(&id).is_some_and(|b| !b.pinned) {
                        self.evict_trace(id);
                    }
                    // stale (already evicted) or since-pinned: just drop
                    // the queue entry.
                }
                None => break,
            }
        }
        if let Some(id) = spare {
            self.order.push_front(id);
        }
        if requeue_traceless {
            // Back to the front: traceless spans are the least valuable,
            // so the next over-budget call trims them first.
            self.order.push_front(0);
        }
    }
}

/// A bounded, thread-safe span store plus request-id registry.
///
/// Construct with [`Tracer::new`] for a recording tracer or
/// [`Tracer::disabled`] for a no-op one (the instrumentation stays
/// compiled in; recording short-circuits before taking any lock or
/// reading any clock).
pub struct Tracer {
    enabled: bool,
    epoch_instant: Instant,
    epoch_unix_nanos: u64,
    next_span: AtomicU64,
    trace_seed: u64,
    next_trace: AtomicU64,
    inner: Mutex<TraceInner>,
}

impl Default for Tracer {
    fn default() -> Self {
        Self::with_capacity(DEFAULT_CAPACITY)
    }
}

impl Tracer {
    /// Recording tracer with the default span budget.
    pub fn new() -> Self {
        Self::default()
    }

    /// Recording tracer keeping at most `capacity` spans (whole oldest
    /// traces evicted first; slow traces pinned past eviction).
    pub fn with_capacity(capacity: usize) -> Self {
        Self::build(true, capacity)
    }

    /// A no-op tracer: `start`/`record`/`point` cost a branch and
    /// nothing else. Used to measure tracing overhead and to switch
    /// tracing off without ripping out instrumentation.
    pub fn disabled() -> Self {
        Self::build(false, 1)
    }

    fn build(enabled: bool, capacity: usize) -> Self {
        let epoch_instant = Instant::now();
        let epoch_unix_nanos = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0);
        // Per-tracer entropy: wall clock plus ASLR'd stack address.
        // Randomizing the span-id stream start keeps ids from distinct
        // processes collision-free once stitched into one trace.
        let local = 0u8;
        let seed = splitmix64(epoch_unix_nanos ^ (&local as *const u8 as u64));
        Tracer {
            enabled,
            epoch_instant,
            epoch_unix_nanos,
            next_span: AtomicU64::new(splitmix64(seed) | 1),
            trace_seed: seed,
            next_trace: AtomicU64::new(1),
            inner: Mutex::new(TraceInner {
                next_seq: 0,
                traces: HashMap::default(),
                order: VecDeque::new(),
                pinned_order: VecDeque::new(),
                total_spans: 0,
                capacity: capacity.max(1),
                slow_threshold: DEFAULT_SLOW_THRESHOLD,
                by_request: HashMap::default(),
                seen_requests: HashSet::default(),
                collisions: 0,
            }),
        }
    }

    /// Set the slow-request threshold: any span at or above it pins
    /// its whole trace against ring eviction.
    pub fn with_slow_threshold(self, threshold: Duration) -> Self {
        self.inner.lock().slow_threshold = threshold;
        self
    }

    /// Whether this tracer records spans at all.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Nanoseconds since the unix epoch by this tracer's clock
    /// (monotonic offsets from one wall-clock anchor, so timestamps
    /// never run backwards within a process).
    pub fn now_unix_nanos(&self) -> u64 {
        self.to_unix_nanos(Instant::now())
    }

    fn to_unix_nanos(&self, at: Instant) -> u64 {
        self.epoch_unix_nanos
            .saturating_add(at.saturating_duration_since(self.epoch_instant).as_nanos() as u64)
    }

    /// Mint a fresh, non-zero 128-bit trace id.
    pub fn mint_trace_id(&self) -> u128 {
        let n = self.next_trace.fetch_add(1, Ordering::Relaxed);
        let hi = splitmix64(self.trace_seed ^ n);
        let lo = splitmix64(n.wrapping_add(self.trace_seed.rotate_left(17)));
        let id = ((hi as u128) << 64) | lo as u128;
        if id == 0 {
            1
        } else {
            id
        }
    }

    /// Start a span now: mints its id and stamps the start instant.
    pub fn start(&self) -> SpanTimer {
        if !self.enabled {
            // No clock read either — `epoch_instant` stands in.
            return SpanTimer { span_id: 0, start: self.epoch_instant };
        }
        SpanTimer { span_id: self.next_span.fetch_add(1, Ordering::Relaxed), start: Instant::now() }
    }

    /// Start a span whose work began at `at` (e.g. when a request hit
    /// the wire, before it reached the traced component).
    pub fn start_at(&self, at: Instant) -> SpanTimer {
        if !self.enabled {
            return SpanTimer { span_id: 0, start: self.epoch_instant };
        }
        SpanTimer { span_id: self.next_span.fetch_add(1, Ordering::Relaxed), start: at }
    }

    /// Finish `timer` now and store the completed span.
    pub fn record(
        &self,
        ctx: SpanContext,
        timer: SpanTimer,
        component: &'static str,
        phase: &'static str,
        detail: String,
    ) {
        if !self.enabled {
            return;
        }
        self.record_at(ctx, timer, Instant::now(), component, phase, detail);
    }

    /// Finish `timer` at an explicit end instant and store the span.
    pub fn record_at(
        &self,
        ctx: SpanContext,
        timer: SpanTimer,
        end: Instant,
        component: &'static str,
        phase: &'static str,
        detail: String,
    ) {
        if !self.enabled {
            return;
        }
        let start_unix_nanos = self.to_unix_nanos(timer.start);
        let end_unix_nanos = self.to_unix_nanos(end).max(start_unix_nanos);
        self.store(Span {
            seq: 0, // assigned under the lock
            trace_id: ctx.trace_id,
            span_id: timer.span_id,
            parent_span: ctx.parent_span,
            request_id: ctx.request_id,
            component,
            phase,
            start_unix_nanos,
            end_unix_nanos,
            detail,
        });
    }

    /// Record an instantaneous (zero-length) span at now.
    pub fn point(
        &self,
        ctx: SpanContext,
        component: &'static str,
        phase: &'static str,
        detail: String,
    ) {
        if !self.enabled {
            return;
        }
        let now = self.now_unix_nanos();
        self.store(Span {
            seq: 0,
            trace_id: ctx.trace_id,
            span_id: self.next_span.fetch_add(1, Ordering::Relaxed),
            parent_span: ctx.parent_span,
            request_id: ctx.request_id,
            component,
            phase,
            start_unix_nanos: now,
            end_unix_nanos: now,
            detail,
        });
    }

    fn store(&self, mut span: Span) {
        let mut inner = self.inner.lock();
        let slow = span.duration() >= inner.slow_threshold;
        span.seq = inner.next_seq;
        inner.next_seq += 1;
        let trace_id = span.trace_id;
        if span.request_id != 0 && trace_id != 0 {
            inner.by_request.insert(span.request_id, trace_id);
        }
        let mut fresh = false;
        let was_pinned;
        {
            // Single probe of the trace map per span: `or_insert_with`
            // flags freshness instead of a separate `contains_key`.
            let buf = inner.traces.entry(trace_id).or_insert_with(|| {
                fresh = true;
                TraceBuf { spans: Vec::with_capacity(8), pinned: false }
            });
            buf.spans.push(span);
            was_pinned = buf.pinned;
            if slow && trace_id != 0 {
                buf.pinned = true;
            }
        }
        inner.total_spans += 1;
        if fresh {
            inner.order.push_back(trace_id);
        }
        if slow && trace_id != 0 && !was_pinned {
            inner.pinned_order.push_back(trace_id);
            if inner.pinned_order.len() > PINNED_TRACE_CAP {
                if let Some(old) = inner.pinned_order.pop_front() {
                    inner.evict_trace(old);
                }
            }
        }
        inner.enforce_budget(trace_id);
    }

    /// Register a freshly minted request id. Returns `false` (and counts
    /// a collision) if any client sharing this tracer already used it.
    pub fn register_request(&self, request_id: u64) -> bool {
        let mut inner = self.inner.lock();
        if inner.seen_requests.insert(request_id) {
            true
        } else {
            inner.collisions += 1;
            false
        }
    }

    /// How many request-id collisions [`Tracer::register_request`] saw.
    pub fn collisions(&self) -> u64 {
        self.inner.lock().collisions
    }

    /// Total spans recorded over the tracer's lifetime (including ones
    /// retention has since evicted).
    pub fn spans_recorded(&self) -> u64 {
        self.inner.lock().next_seq
    }

    /// All retained spans in recording order.
    pub fn spans(&self) -> Vec<Span> {
        let inner = self.inner.lock();
        let mut all: Vec<Span> =
            inner.traces.values().flat_map(|b| b.spans.iter().cloned()).collect();
        all.sort_by_key(|s| s.seq);
        all
    }

    /// Retained spans of the trace serving `request_id`, in recording
    /// order — an index lookup, not a ring scan.
    pub fn spans_for_request(&self, request_id: u64) -> Vec<Span> {
        let inner = self.inner.lock();
        let Some(trace_id) = inner.by_request.get(&request_id) else {
            return Vec::new();
        };
        let mut spans: Vec<Span> = inner
            .traces
            .get(trace_id)
            .map(|b| b.spans.iter().filter(|s| s.request_id == request_id).cloned().collect())
            .unwrap_or_default();
        spans.sort_by_key(|s| s.seq);
        spans
    }

    /// Retained spans of one trace, in recording order.
    pub fn spans_for_trace(&self, trace_id: u128) -> Vec<Span> {
        let inner = self.inner.lock();
        let mut spans: Vec<Span> =
            inner.traces.get(&trace_id).map(|b| b.spans.clone()).unwrap_or_default();
        spans.sort_by_key(|s| s.seq);
        spans
    }

    /// All retained spans as owned records (what `TraceReply` carries).
    /// `trace_id` 0 selects everything; otherwise only that trace.
    pub fn snapshot_trace(&self, trace_id: u128) -> Vec<SpanRecord> {
        let spans = if trace_id == 0 { self.spans() } else { self.spans_for_trace(trace_id) };
        spans.iter().map(Span::to_record).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(trace: u128, request: u64) -> SpanContext {
        SpanContext { trace_id: trace, parent_span: 0, request_id: request }
    }

    #[test]
    fn spans_keep_recording_order_and_index_by_request() {
        let t = Tracer::new();
        let a = t.start();
        t.record(ctx(10, 7), a, "client", "attempt", "srv0".into());
        let b = t.start();
        t.record(ctx(10, 7), b, "client", "attempt", "srv1".into());
        t.point(ctx(11, 9), "client", "call_ok", String::new());
        let all = t.spans();
        assert_eq!(all.len(), 3);
        assert!(all.windows(2).all(|w| w[0].seq < w[1].seq));
        assert_eq!(t.spans_for_request(7).len(), 2);
        assert_eq!(t.spans_for_request(9)[0].phase, "call_ok");
        assert_eq!(t.spans_recorded(), 3);
        assert_ne!(all[0].span_id, all[1].span_id, "span ids are unique");
    }

    #[test]
    fn budget_evicts_oldest_traces_whole() {
        let t = Tracer::with_capacity(4);
        for i in 0..10u64 {
            t.point(ctx(100 + i as u128, i), "client", "attempt", String::new());
        }
        let kept = t.spans();
        assert_eq!(kept.len(), 4);
        assert_eq!(kept[0].request_id, 6, "oldest traces evicted");
        assert_eq!(t.spans_recorded(), 10);
        assert!(t.spans_for_request(2).is_empty(), "evicted trace leaves no index entry");
        assert_eq!(t.spans_for_request(8).len(), 1);
    }

    #[test]
    fn traceless_bucket_is_ring_bounded() {
        // Regression: all traceless spans share trace 0, so the "never
        // evict the trace just written to" protection used to let an
        // idle daemon recording only heartbeats grow without bound.
        let t = Tracer::with_capacity(4);
        for _ in 0..100 {
            t.point(SpanContext::NONE, "agent", "heartbeat", String::new());
        }
        let kept = t.spans();
        assert_eq!(kept.len(), 4, "traceless bucket trimmed as a ring");
        assert!(kept.iter().all(|s| s.seq >= 96), "newest spans retained");
        assert_eq!(t.spans_recorded(), 100);
    }

    #[test]
    fn traceless_spans_do_not_starve_real_traces() {
        let t = Tracer::with_capacity(4);
        for _ in 0..10 {
            t.point(SpanContext::NONE, "agent", "heartbeat", String::new());
        }
        t.point(ctx(7, 7), "client", "attempt", String::new());
        for _ in 0..10 {
            t.point(SpanContext::NONE, "agent", "heartbeat", String::new());
        }
        assert_eq!(t.spans_for_request(7).len(), 1, "real trace survives heartbeat flood");
        assert!(t.spans().len() <= 4, "budget holds across both buckets");
    }

    #[test]
    fn slow_trace_is_pinned_past_eviction() {
        let t = Tracer::with_capacity(4).with_slow_threshold(Duration::from_millis(5));
        let timer = t.start();
        std::thread::sleep(Duration::from_millis(10));
        t.record(ctx(1, 1), timer, "server", "solve", String::new());
        for i in 0..20u64 {
            t.point(ctx(50 + i as u128, 100 + i), "client", "attempt", String::new());
        }
        let slow = t.spans_for_trace(1);
        assert_eq!(slow.len(), 1, "slow trace survives eviction pressure");
        assert!(slow[0].duration() >= Duration::from_millis(5));
        assert!(t.spans().len() <= 5, "budget still bounds everything else");
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = Tracer::disabled();
        assert!(!t.is_enabled());
        let timer = t.start();
        t.record(ctx(1, 1), timer, "client", "attempt", String::new());
        t.point(ctx(1, 1), "client", "call_ok", String::new());
        assert_eq!(t.spans_recorded(), 0);
        assert!(t.spans().is_empty());
    }

    #[test]
    fn request_id_collisions_are_counted() {
        let t = Tracer::new();
        assert!(t.register_request(1));
        assert!(t.register_request(2));
        assert_eq!(t.collisions(), 0);
        assert!(!t.register_request(1));
        assert_eq!(t.collisions(), 1);
    }

    #[test]
    fn trace_ids_are_distinct_and_nonzero() {
        let t = Tracer::new();
        let a = t.mint_trace_id();
        let b = t.mint_trace_id();
        assert_ne!(a, 0);
        assert_ne!(a, b);
    }

    #[test]
    fn span_record_line_roundtrips() {
        let rec = SpanRecord {
            trace_id: 0xdead_beef_0000_0001,
            span_id: 42,
            parent_span: 7,
            request_id: 11,
            component: "client".into(),
            phase: "marshal".into(),
            start_unix_nanos: 1_000,
            end_unix_nanos: 2_500,
            detail: "tab\there\nnewline \\slash".into(),
        };
        let line = rec.to_line();
        assert!(!line.contains('\n'));
        assert_eq!(SpanRecord::from_line(&line), Some(rec));
        assert_eq!(SpanRecord::from_line("not a span"), None);
    }

    #[test]
    fn timestamps_are_epoch_anchored_and_ordered() {
        let t = Tracer::new();
        let timer = t.start();
        t.record(ctx(5, 5), timer, "client", "wait", String::new());
        let s = &t.spans()[0];
        assert!(s.end_unix_nanos >= s.start_unix_nanos);
        // Sanity: after 2020-01-01 in unix nanos.
        assert!(s.start_unix_nanos > 1_577_836_800_000_000_000);
    }
}
