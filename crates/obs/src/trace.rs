//! Structured trace events keyed by the protocol's `request_id`.
//!
//! The [`Tracer`] is a bounded ring buffer of [`TraceEvent`]s: each
//! records which component saw what happen to which request, in global
//! sequence order. It doubles as the request-id uniqueness monitor — a
//! shared tracer registers every id a client mints and counts
//! collisions, which is how the "two concurrent clients must never
//! submit the same `request_id`" invariant is asserted at trace level
//! rather than hoped for.

use std::collections::{HashSet, VecDeque};

use parking_lot::Mutex;

/// Default ring capacity: enough for a soak test's tail without
/// unbounded growth in long-lived daemons.
const DEFAULT_CAPACITY: usize = 1024;

/// One traced occurrence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Global sequence number (monotone per tracer).
    pub seq: u64,
    /// The request this event belongs to (0 for request-less events).
    pub request_id: u64,
    /// Component that emitted it (`"client"`, `"server"`, `"agent"`).
    pub component: String,
    /// Event kind, e.g. `"attempt"`, `"backoff"`, `"deadline_exhausted"`.
    pub event: String,
    /// Free-form detail.
    pub detail: String,
}

struct TraceInner {
    next_seq: u64,
    ring: VecDeque<TraceEvent>,
    capacity: usize,
    seen_requests: HashSet<u64>,
    collisions: u64,
}

/// A bounded, thread-safe event ring plus request-id registry.
pub struct Tracer {
    inner: Mutex<TraceInner>,
}

impl Default for Tracer {
    fn default() -> Self {
        Self::with_capacity(DEFAULT_CAPACITY)
    }
}

impl Tracer {
    /// Tracer with the default ring capacity.
    pub fn new() -> Self {
        Self::default()
    }

    /// Tracer keeping at most `capacity` events (oldest evicted first).
    pub fn with_capacity(capacity: usize) -> Self {
        Tracer {
            inner: Mutex::new(TraceInner {
                next_seq: 0,
                ring: VecDeque::with_capacity(capacity.min(DEFAULT_CAPACITY)),
                capacity: capacity.max(1),
                seen_requests: HashSet::new(),
                collisions: 0,
            }),
        }
    }

    /// Append one event.
    pub fn emit(&self, request_id: u64, component: &str, event: &str, detail: String) {
        let mut inner = self.inner.lock();
        let seq = inner.next_seq;
        inner.next_seq += 1;
        if inner.ring.len() == inner.capacity {
            inner.ring.pop_front();
        }
        inner.ring.push_back(TraceEvent {
            seq,
            request_id,
            component: component.to_string(),
            event: event.to_string(),
            detail,
        });
    }

    /// Register a freshly minted request id. Returns `false` (and counts
    /// a collision) if any client sharing this tracer already used it.
    pub fn register_request(&self, request_id: u64) -> bool {
        let mut inner = self.inner.lock();
        if inner.seen_requests.insert(request_id) {
            true
        } else {
            inner.collisions += 1;
            false
        }
    }

    /// How many request-id collisions [`Tracer::register_request`] saw.
    pub fn collisions(&self) -> u64 {
        self.inner.lock().collisions
    }

    /// Total events emitted over the tracer's lifetime (including ones
    /// the ring has since evicted).
    pub fn events_emitted(&self) -> u64 {
        self.inner.lock().next_seq
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.inner.lock().ring.iter().cloned().collect()
    }

    /// The retained events for one request, oldest first.
    pub fn events_for(&self, request_id: u64) -> Vec<TraceEvent> {
        self.inner
            .lock()
            .ring
            .iter()
            .filter(|e| e.request_id == request_id)
            .cloned()
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_keep_sequence_order() {
        let t = Tracer::new();
        t.emit(7, "client", "attempt", "srv0".into());
        t.emit(7, "client", "attempt", "srv1".into());
        t.emit(9, "client", "call_ok", String::new());
        let all = t.events();
        assert_eq!(all.len(), 3);
        assert!(all.windows(2).all(|w| w[0].seq < w[1].seq));
        assert_eq!(t.events_for(7).len(), 2);
        assert_eq!(t.events_for(9)[0].event, "call_ok");
        assert_eq!(t.events_emitted(), 3);
    }

    #[test]
    fn ring_evicts_oldest_past_capacity() {
        let t = Tracer::with_capacity(4);
        for i in 0..10 {
            t.emit(i, "client", "attempt", String::new());
        }
        let kept = t.events();
        assert_eq!(kept.len(), 4);
        assert_eq!(kept[0].request_id, 6, "oldest events evicted");
        assert_eq!(t.events_emitted(), 10);
    }

    #[test]
    fn request_id_collisions_are_counted() {
        let t = Tracer::new();
        assert!(t.register_request(1));
        assert!(t.register_request(2));
        assert_eq!(t.collisions(), 0);
        assert!(!t.register_request(1));
        assert_eq!(t.collisions(), 1);
    }
}
