//! Atomic metric instruments and the registry that owns them.
//!
//! Three instrument kinds cover everything the daemons need:
//!
//! * [`Counter`] — monotone `u64`, one `fetch_add` per event;
//! * [`Gauge`] — signed level (`i64`), inc/dec/set;
//! * [`Histogram`] — fixed log-scale buckets for durations: bucket `i`
//!   holds samples up to `1 µs × 2^i`, doubling from 1 µs to ~33 s, with
//!   the last bucket absorbing everything longer. Recording is two
//!   `fetch_add`s plus one on the nanosecond sum — no locks, no heap.
//!
//! Instruments are created (and found again) by name through the
//! [`MetricsRegistry`]; callers cache the returned `Arc` outside hot
//! loops. [`MetricsRegistry::snapshot`] freezes everything into a
//! [`StatsSnapshot`], the plain-data form that travels in `StatsReply`
//! wire messages.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

/// Number of histogram buckets: 1 µs doubling up to `2^25` µs (~33.6 s),
/// with the final bucket catching every longer sample.
pub const HISTOGRAM_BUCKETS: usize = 26;

/// A monotone event counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Count one event.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Count `n` events at once.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A signed level (queue depths, in-flight request counts).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Raise the level by one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Lower the level by one.
    pub fn dec(&self) {
        self.0.fetch_sub(1, Ordering::Relaxed);
    }

    /// Set the level outright.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current level.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A fixed-bucket log-scale duration histogram (seconds in, buckets of
/// doubling width from 1 µs).
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum_nanos: AtomicU64,
    /// Trace exemplars: the most recent trace id recorded into each
    /// bucket plus the trace of the slowest sample seen. 128-bit ids
    /// cannot be updated tearlessly with two atomics, so the slots sit
    /// behind a mutex taken with `try_lock` — a contended update is
    /// simply skipped (exemplars are a sample, not an invariant), so
    /// the recording hot path never blocks.
    exemplars: Mutex<ExemplarSlots>,
}

#[derive(Debug)]
struct ExemplarSlots {
    per_bucket: [u128; HISTOGRAM_BUCKETS],
    max_secs: f64,
    max_trace: u128,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_nanos: AtomicU64::new(0),
            exemplars: Mutex::new(ExemplarSlots {
                per_bucket: [0; HISTOGRAM_BUCKETS],
                max_secs: f64::NEG_INFINITY,
                max_trace: 0,
            }),
        }
    }
}

/// The bucket a sample of `secs` falls into.
fn bucket_index(secs: f64) -> usize {
    if secs.is_nan() || secs <= 1e-6 {
        // NaN, negative and sub-microsecond samples all land in bucket 0.
        return 0;
    }
    let idx = (secs / 1e-6).log2().ceil() as i64;
    idx.clamp(0, HISTOGRAM_BUCKETS as i64 - 1) as usize
}

/// Inclusive upper bound of bucket `i` in seconds (the last bucket is
/// reported with this bound but actually unbounded).
pub fn bucket_bound_secs(i: usize) -> f64 {
    1e-6 * (1u64 << i.min(HISTOGRAM_BUCKETS - 1)) as f64
}

impl Histogram {
    /// Record one duration sample in seconds.
    pub fn record_secs(&self, secs: f64) {
        self.record_secs_traced(secs, 0);
    }

    /// Record one duration sample in seconds, retaining `trace_id` as the
    /// bucket's exemplar (and as the histogram's max exemplar if this is
    /// the slowest sample yet). A zero trace id records the sample
    /// without touching the exemplar slots — identical cost to
    /// [`Histogram::record_secs`].
    pub fn record_secs_traced(&self, secs: f64, trace_id: u128) {
        let idx = bucket_index(secs);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        let nanos = if secs.is_finite() && secs > 0.0 {
            (secs * 1e9).min(u64::MAX as f64) as u64
        } else {
            0
        };
        self.sum_nanos.fetch_add(nanos, Ordering::Relaxed);
        if trace_id != 0 {
            // Skipped under contention: a lost exemplar update is
            // acceptable sampling loss, a blocked request path is not.
            if let Some(mut slots) = self.exemplars.try_lock() {
                slots.per_bucket[idx] = trace_id;
                if secs > slots.max_secs {
                    slots.max_secs = secs;
                    slots.max_trace = trace_id;
                }
            }
        }
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all samples in seconds.
    pub fn sum_secs(&self) -> f64 {
        self.sum_nanos.load(Ordering::Relaxed) as f64 / 1e9
    }

    /// Freeze this histogram into plain data.
    pub fn snapshot(&self, name: &str) -> HistogramSnapshot {
        let (exemplars, max_exemplar) = {
            let slots = self.exemplars.lock();
            (slots.per_bucket.to_vec(), slots.max_trace)
        };
        HistogramSnapshot {
            name: name.to_string(),
            count: self.count(),
            sum_secs: self.sum_secs(),
            buckets: self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect(),
            exemplars,
            max_exemplar,
        }
    }
}

/// Plain-data form of one histogram, as carried in `StatsReply`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct HistogramSnapshot {
    /// Metric name (e.g. `server.compute_secs`).
    pub name: String,
    /// Total samples.
    pub count: u64,
    /// Sum of all samples, seconds.
    pub sum_secs: f64,
    /// Per-bucket sample counts ([`HISTOGRAM_BUCKETS`] entries; decoded
    /// snapshots from other builds may legitimately differ in length).
    pub buckets: Vec<u64>,
    /// The most recent trace id recorded into each bucket (0 = none
    /// yet). Same length as `buckets`, or empty when the snapshot came
    /// from a pre-v6 peer that does not carry exemplars.
    pub exemplars: Vec<u128>,
    /// Trace id of the slowest sample ever recorded (0 = none).
    pub max_exemplar: u128,
}

impl HistogramSnapshot {
    /// Mean sample in seconds (0 when empty).
    pub fn mean_secs(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_secs / self.count as f64
        }
    }

    /// Estimate the `q`-quantile in seconds from the log buckets: walk
    /// the cumulative counts and report the upper bound of the bucket
    /// holding the `q`-th sample. With doubling buckets the estimate is
    /// within 2x of the true sample, which is what a log histogram can
    /// promise. Returns 0 when empty; `q` is clamped to `[0, 1]`.
    pub fn quantile_secs(&self, q: f64) -> f64 {
        match self.quantile_bucket(q) {
            Some(i) => bucket_bound_secs(i),
            None => 0.0,
        }
    }

    /// Index of the bucket holding the `q`-th sample (the same walk
    /// [`HistogramSnapshot::quantile_secs`] reports the bound of), or
    /// `None` when the histogram is empty.
    pub fn quantile_bucket(&self, q: f64) -> Option<usize> {
        if self.count == 0 || self.buckets.is_empty() {
            return None;
        }
        let q = if q.is_nan() { 0.5 } else { q.clamp(0.0, 1.0) };
        let target = ((q * self.count as f64).ceil() as u64).max(1);
        let mut cumulative = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            cumulative = cumulative.saturating_add(c);
            if cumulative >= target {
                return Some(i);
            }
        }
        Some(self.buckets.len() - 1)
    }

    /// The trace exemplar nearest the `q`-quantile bucket: the exemplar
    /// of the bucket itself if one was captured, else the nearest lower
    /// bucket's, else the nearest higher, else the max-sample exemplar.
    /// Returns 0 when no sample ever carried a trace id.
    pub fn exemplar_near(&self, q: f64) -> u128 {
        let Some(idx) = self.quantile_bucket(q) else {
            return self.max_exemplar;
        };
        if self.exemplars.is_empty() {
            return self.max_exemplar;
        }
        let idx = idx.min(self.exemplars.len() - 1);
        for i in (0..=idx).rev() {
            if self.exemplars[i] != 0 {
                return self.exemplars[i];
            }
        }
        for &e in &self.exemplars[idx + 1..] {
            if e != 0 {
                return e;
            }
        }
        self.max_exemplar
    }
}

/// Everything one daemon's registry held at snapshot time.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct StatsSnapshot {
    /// Which daemon answered (`"client"`, `"server"`, `"agent"`, …).
    pub component: String,
    /// Counter values, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Gauge levels, sorted by name.
    pub gauges: Vec<(String, i64)>,
    /// Histograms, sorted by name.
    pub histograms: Vec<HistogramSnapshot>,
}

impl StatsSnapshot {
    /// Look up a counter by name (0 when absent — an instrument that was
    /// never touched may not exist yet).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    }

    /// Look up a gauge by name (0 when absent).
    pub fn gauge(&self, name: &str) -> i64 {
        self.gauges
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    }

    /// Look up a histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|h| h.name == name)
    }
}

/// Owns every named instrument of one daemon. Lookup takes a short lock;
/// the instruments themselves are lock-free, so hot paths fetch their
/// `Arc`s once and then only touch atomics.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The counter named `name`, created on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.counters.lock();
        Arc::clone(map.entry(name.to_string()).or_default())
    }

    /// The gauge named `name`, created on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut map = self.gauges.lock();
        Arc::clone(map.entry(name.to_string()).or_default())
    }

    /// The histogram named `name`, created on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut map = self.histograms.lock();
        Arc::clone(map.entry(name.to_string()).or_default())
    }

    /// Freeze every instrument into a [`StatsSnapshot`] labelled with the
    /// answering `component`.
    pub fn snapshot(&self, component: &str) -> StatsSnapshot {
        StatsSnapshot {
            component: component.to_string(),
            counters: self
                .counters
                .lock()
                .iter()
                .map(|(n, c)| (n.clone(), c.get()))
                .collect(),
            gauges: self
                .gauges
                .lock()
                .iter()
                .map(|(n, g)| (n.clone(), g.get()))
                .collect(),
            histograms: self
                .histograms
                .lock()
                .iter()
                .map(|(n, h)| h.snapshot(n))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_accumulate() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("x.events");
        c.inc();
        c.add(4);
        assert_eq!(reg.counter("x.events").get(), 5, "same name, same instrument");
        let g = reg.gauge("x.depth");
        g.inc();
        g.inc();
        g.dec();
        assert_eq!(g.get(), 1);
        g.set(-3);
        assert_eq!(reg.gauge("x.depth").get(), -3);
    }

    #[test]
    fn histogram_buckets_are_log_scale() {
        assert_eq!(bucket_index(0.0), 0);
        assert_eq!(bucket_index(f64::NAN), 0);
        assert_eq!(bucket_index(-1.0), 0);
        assert_eq!(bucket_index(1e-6), 0);
        assert_eq!(bucket_index(1.5e-6), 1);
        assert_eq!(bucket_index(3e-6), 2);
        // 1 ms = 2^10 µs exactly: bucket 10.
        assert_eq!(bucket_index(1.024e-3), 10);
        // Far beyond the last bound: clamped to the overflow bucket.
        assert_eq!(bucket_index(1e6), HISTOGRAM_BUCKETS - 1);
        // Bounds double from 1 µs.
        assert_eq!(bucket_bound_secs(0), 1e-6);
        assert_eq!(bucket_bound_secs(1), 2e-6);
        assert!(bucket_bound_secs(HISTOGRAM_BUCKETS - 1) > 30.0);
    }

    #[test]
    fn histogram_records_and_snapshots() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("x.secs");
        h.record_secs(0.5e-6);
        h.record_secs(3e-6);
        h.record_secs(0.010);
        let snap = h.snapshot("x.secs");
        assert_eq!(snap.count, 3);
        assert!((snap.sum_secs - 0.0100035).abs() < 1e-6, "sum {}", snap.sum_secs);
        assert_eq!(snap.buckets.len(), HISTOGRAM_BUCKETS);
        assert_eq!(snap.buckets.iter().sum::<u64>(), 3);
        assert_eq!(snap.buckets[0], 1);
        assert_eq!(snap.buckets[2], 1);
        assert!((snap.mean_secs() - snap.sum_secs / 3.0).abs() < 1e-12);
    }

    #[test]
    fn quantiles_walk_the_log_buckets() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("x.secs");
        // 90 samples at ~1 µs, 9 at ~1 ms, 1 at ~1 s.
        for _ in 0..90 {
            h.record_secs(0.9e-6);
        }
        for _ in 0..9 {
            h.record_secs(1.0e-3);
        }
        h.record_secs(0.9);
        let snap = h.snapshot("x.secs");
        assert_eq!(snap.quantile_secs(0.5), bucket_bound_secs(0), "p50 in the 1 µs bucket");
        let p95 = snap.quantile_secs(0.95);
        assert!((0.5e-3..=2.1e-3).contains(&p95), "p95 near 1 ms, got {p95}");
        let p99 = snap.quantile_secs(0.99);
        assert!((0.5e-3..=2.1e-3).contains(&p99), "p99 is the 99th sample (1 ms), got {p99}");
        assert!(snap.quantile_secs(1.0) >= 0.5, "p100 lands on the 1 s sample");
        assert!(snap.quantile_secs(1.0) >= snap.quantile_secs(0.5));
        let empty = HistogramSnapshot {
            name: "e".into(),
            buckets: vec![0; HISTOGRAM_BUCKETS],
            ..Default::default()
        };
        assert_eq!(empty.quantile_secs(0.5), 0.0);
    }

    #[test]
    fn exemplars_track_buckets_and_the_max_sample() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("x.secs");
        h.record_secs(1e-3); // untraced: no exemplar
        h.record_secs_traced(1e-3, 0xAA);
        h.record_secs_traced(0.9e-3, 0xBB); // same bucket (≤1.024 ms): overwrites
        h.record_secs_traced(0.5, 0xCC); // slowest sample so far
        h.record_secs_traced(2e-6, 0xDD);
        let snap = h.snapshot("x.secs");
        assert_eq!(snap.exemplars.len(), HISTOGRAM_BUCKETS);
        assert_eq!(snap.exemplars[bucket_index(1e-3)], 0xBB, "latest wins the bucket");
        assert_eq!(snap.exemplars[bucket_index(2e-6)], 0xDD);
        assert_eq!(snap.max_exemplar, 0xCC, "slowest sample pins the max exemplar");
        // p99 of {2µs, 1ms, 1ms, 1ms, 0.5s} lands in the 0.5 s bucket.
        assert_eq!(snap.exemplar_near(0.99), 0xCC);
        // p50 lands in the 1 ms bucket.
        assert_eq!(snap.exemplar_near(0.5), 0xBB);
        // A quantile falling in an exemplar-free bucket borrows the
        // nearest captured one rather than returning nothing.
        assert_ne!(snap.exemplar_near(0.2), 0);
        let empty = HistogramSnapshot::default();
        assert_eq!(empty.exemplar_near(0.99), 0);
    }

    #[test]
    fn snapshot_is_sorted_and_queryable() {
        let reg = MetricsRegistry::new();
        reg.counter("b.second").add(2);
        reg.counter("a.first").add(1);
        reg.gauge("depth").set(7);
        reg.histogram("lat").record_secs(0.001);
        let snap = reg.snapshot("test");
        assert_eq!(snap.component, "test");
        let names: Vec<&str> = snap.counters.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["a.first", "b.second"], "BTreeMap keeps names sorted");
        assert_eq!(snap.counter("a.first"), 1);
        assert_eq!(snap.counter("missing"), 0);
        assert_eq!(snap.gauge("depth"), 7);
        assert_eq!(snap.histogram("lat").unwrap().count, 1);
        assert!(snap.histogram("missing").is_none());
    }

    #[test]
    fn instruments_are_shared_across_threads() {
        let reg = Arc::new(MetricsRegistry::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let reg = Arc::clone(&reg);
                std::thread::spawn(move || {
                    let c = reg.counter("hits");
                    for _ in 0..1000 {
                        c.inc();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(reg.counter("hits").get(), 4000);
    }
}
