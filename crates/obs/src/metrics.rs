//! Atomic metric instruments and the registry that owns them.
//!
//! Three instrument kinds cover everything the daemons need:
//!
//! * [`Counter`] — monotone `u64`, one `fetch_add` per event;
//! * [`Gauge`] — signed level (`i64`), inc/dec/set;
//! * [`Histogram`] — fixed log-scale buckets for durations: bucket `i`
//!   holds samples up to `1 µs × 2^i`, doubling from 1 µs to ~33 s, with
//!   the last bucket absorbing everything longer. Recording is two
//!   `fetch_add`s plus one on the nanosecond sum — no locks, no heap.
//!
//! Instruments are created (and found again) by name through the
//! [`MetricsRegistry`]; callers cache the returned `Arc` outside hot
//! loops. [`MetricsRegistry::snapshot`] freezes everything into a
//! [`StatsSnapshot`], the plain-data form that travels in `StatsReply`
//! wire messages.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

/// Number of histogram buckets: 1 µs doubling up to `2^25` µs (~33.6 s),
/// with the final bucket catching every longer sample.
pub const HISTOGRAM_BUCKETS: usize = 26;

/// A monotone event counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Count one event.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Count `n` events at once.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A signed level (queue depths, in-flight request counts).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Raise the level by one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Lower the level by one.
    pub fn dec(&self) {
        self.0.fetch_sub(1, Ordering::Relaxed);
    }

    /// Set the level outright.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current level.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A fixed-bucket log-scale duration histogram (seconds in, buckets of
/// doubling width from 1 µs).
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum_nanos: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_nanos: AtomicU64::new(0),
        }
    }
}

/// The bucket a sample of `secs` falls into.
fn bucket_index(secs: f64) -> usize {
    if secs.is_nan() || secs <= 1e-6 {
        // NaN, negative and sub-microsecond samples all land in bucket 0.
        return 0;
    }
    let idx = (secs / 1e-6).log2().ceil() as i64;
    idx.clamp(0, HISTOGRAM_BUCKETS as i64 - 1) as usize
}

/// Inclusive upper bound of bucket `i` in seconds (the last bucket is
/// reported with this bound but actually unbounded).
pub fn bucket_bound_secs(i: usize) -> f64 {
    1e-6 * (1u64 << i.min(HISTOGRAM_BUCKETS - 1)) as f64
}

impl Histogram {
    /// Record one duration sample in seconds.
    pub fn record_secs(&self, secs: f64) {
        self.buckets[bucket_index(secs)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        let nanos = if secs.is_finite() && secs > 0.0 {
            (secs * 1e9).min(u64::MAX as f64) as u64
        } else {
            0
        };
        self.sum_nanos.fetch_add(nanos, Ordering::Relaxed);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all samples in seconds.
    pub fn sum_secs(&self) -> f64 {
        self.sum_nanos.load(Ordering::Relaxed) as f64 / 1e9
    }

    /// Freeze this histogram into plain data.
    pub fn snapshot(&self, name: &str) -> HistogramSnapshot {
        HistogramSnapshot {
            name: name.to_string(),
            count: self.count(),
            sum_secs: self.sum_secs(),
            buckets: self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect(),
        }
    }
}

/// Plain-data form of one histogram, as carried in `StatsReply`.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Metric name (e.g. `server.compute_secs`).
    pub name: String,
    /// Total samples.
    pub count: u64,
    /// Sum of all samples, seconds.
    pub sum_secs: f64,
    /// Per-bucket sample counts ([`HISTOGRAM_BUCKETS`] entries; decoded
    /// snapshots from other builds may legitimately differ in length).
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// Mean sample in seconds (0 when empty).
    pub fn mean_secs(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_secs / self.count as f64
        }
    }

    /// Estimate the `q`-quantile in seconds from the log buckets: walk
    /// the cumulative counts and report the upper bound of the bucket
    /// holding the `q`-th sample. With doubling buckets the estimate is
    /// within 2x of the true sample, which is what a log histogram can
    /// promise. Returns 0 when empty; `q` is clamped to `[0, 1]`.
    pub fn quantile_secs(&self, q: f64) -> f64 {
        if self.count == 0 || self.buckets.is_empty() {
            return 0.0;
        }
        let q = if q.is_nan() { 0.5 } else { q.clamp(0.0, 1.0) };
        let target = ((q * self.count as f64).ceil() as u64).max(1);
        let mut cumulative = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            cumulative = cumulative.saturating_add(c);
            if cumulative >= target {
                return bucket_bound_secs(i);
            }
        }
        bucket_bound_secs(self.buckets.len() - 1)
    }
}

/// Everything one daemon's registry held at snapshot time.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct StatsSnapshot {
    /// Which daemon answered (`"client"`, `"server"`, `"agent"`, …).
    pub component: String,
    /// Counter values, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Gauge levels, sorted by name.
    pub gauges: Vec<(String, i64)>,
    /// Histograms, sorted by name.
    pub histograms: Vec<HistogramSnapshot>,
}

impl StatsSnapshot {
    /// Look up a counter by name (0 when absent — an instrument that was
    /// never touched may not exist yet).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    }

    /// Look up a gauge by name (0 when absent).
    pub fn gauge(&self, name: &str) -> i64 {
        self.gauges
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    }

    /// Look up a histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|h| h.name == name)
    }
}

/// Owns every named instrument of one daemon. Lookup takes a short lock;
/// the instruments themselves are lock-free, so hot paths fetch their
/// `Arc`s once and then only touch atomics.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The counter named `name`, created on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.counters.lock();
        Arc::clone(map.entry(name.to_string()).or_default())
    }

    /// The gauge named `name`, created on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut map = self.gauges.lock();
        Arc::clone(map.entry(name.to_string()).or_default())
    }

    /// The histogram named `name`, created on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut map = self.histograms.lock();
        Arc::clone(map.entry(name.to_string()).or_default())
    }

    /// Freeze every instrument into a [`StatsSnapshot`] labelled with the
    /// answering `component`.
    pub fn snapshot(&self, component: &str) -> StatsSnapshot {
        StatsSnapshot {
            component: component.to_string(),
            counters: self
                .counters
                .lock()
                .iter()
                .map(|(n, c)| (n.clone(), c.get()))
                .collect(),
            gauges: self
                .gauges
                .lock()
                .iter()
                .map(|(n, g)| (n.clone(), g.get()))
                .collect(),
            histograms: self
                .histograms
                .lock()
                .iter()
                .map(|(n, h)| h.snapshot(n))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_accumulate() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("x.events");
        c.inc();
        c.add(4);
        assert_eq!(reg.counter("x.events").get(), 5, "same name, same instrument");
        let g = reg.gauge("x.depth");
        g.inc();
        g.inc();
        g.dec();
        assert_eq!(g.get(), 1);
        g.set(-3);
        assert_eq!(reg.gauge("x.depth").get(), -3);
    }

    #[test]
    fn histogram_buckets_are_log_scale() {
        assert_eq!(bucket_index(0.0), 0);
        assert_eq!(bucket_index(f64::NAN), 0);
        assert_eq!(bucket_index(-1.0), 0);
        assert_eq!(bucket_index(1e-6), 0);
        assert_eq!(bucket_index(1.5e-6), 1);
        assert_eq!(bucket_index(3e-6), 2);
        // 1 ms = 2^10 µs exactly: bucket 10.
        assert_eq!(bucket_index(1.024e-3), 10);
        // Far beyond the last bound: clamped to the overflow bucket.
        assert_eq!(bucket_index(1e6), HISTOGRAM_BUCKETS - 1);
        // Bounds double from 1 µs.
        assert_eq!(bucket_bound_secs(0), 1e-6);
        assert_eq!(bucket_bound_secs(1), 2e-6);
        assert!(bucket_bound_secs(HISTOGRAM_BUCKETS - 1) > 30.0);
    }

    #[test]
    fn histogram_records_and_snapshots() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("x.secs");
        h.record_secs(0.5e-6);
        h.record_secs(3e-6);
        h.record_secs(0.010);
        let snap = h.snapshot("x.secs");
        assert_eq!(snap.count, 3);
        assert!((snap.sum_secs - 0.0100035).abs() < 1e-6, "sum {}", snap.sum_secs);
        assert_eq!(snap.buckets.len(), HISTOGRAM_BUCKETS);
        assert_eq!(snap.buckets.iter().sum::<u64>(), 3);
        assert_eq!(snap.buckets[0], 1);
        assert_eq!(snap.buckets[2], 1);
        assert!((snap.mean_secs() - snap.sum_secs / 3.0).abs() < 1e-12);
    }

    #[test]
    fn quantiles_walk_the_log_buckets() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("x.secs");
        // 90 samples at ~1 µs, 9 at ~1 ms, 1 at ~1 s.
        for _ in 0..90 {
            h.record_secs(0.9e-6);
        }
        for _ in 0..9 {
            h.record_secs(1.0e-3);
        }
        h.record_secs(0.9);
        let snap = h.snapshot("x.secs");
        assert_eq!(snap.quantile_secs(0.5), bucket_bound_secs(0), "p50 in the 1 µs bucket");
        let p95 = snap.quantile_secs(0.95);
        assert!((0.5e-3..=2.1e-3).contains(&p95), "p95 near 1 ms, got {p95}");
        let p99 = snap.quantile_secs(0.99);
        assert!((0.5e-3..=2.1e-3).contains(&p99), "p99 is the 99th sample (1 ms), got {p99}");
        assert!(snap.quantile_secs(1.0) >= 0.5, "p100 lands on the 1 s sample");
        assert!(snap.quantile_secs(1.0) >= snap.quantile_secs(0.5));
        let empty = HistogramSnapshot {
            name: "e".into(),
            count: 0,
            sum_secs: 0.0,
            buckets: vec![0; HISTOGRAM_BUCKETS],
        };
        assert_eq!(empty.quantile_secs(0.5), 0.0);
    }

    #[test]
    fn snapshot_is_sorted_and_queryable() {
        let reg = MetricsRegistry::new();
        reg.counter("b.second").add(2);
        reg.counter("a.first").add(1);
        reg.gauge("depth").set(7);
        reg.histogram("lat").record_secs(0.001);
        let snap = reg.snapshot("test");
        assert_eq!(snap.component, "test");
        let names: Vec<&str> = snap.counters.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["a.first", "b.second"], "BTreeMap keeps names sorted");
        assert_eq!(snap.counter("a.first"), 1);
        assert_eq!(snap.counter("missing"), 0);
        assert_eq!(snap.gauge("depth"), 7);
        assert_eq!(snap.histogram("lat").unwrap().count, 1);
        assert!(snap.histogram("missing").is_none());
    }

    #[test]
    fn instruments_are_shared_across_threads() {
        let reg = Arc::new(MetricsRegistry::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let reg = Arc::clone(&reg);
                std::thread::spawn(move || {
                    let c = reg.counter("hits");
                    for _ in 0..1000 {
                        c.inc();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(reg.counter("hits").get(), 4000);
    }
}
