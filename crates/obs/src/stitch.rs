//! Stitch span records from many processes into causal timelines.
//!
//! `netsl-trace` scrapes [`SpanRecord`]s from the agent and every
//! server (the `TraceQuery` wire message) and reads the client-side
//! dump file, then calls [`stitch`] to group them by `trace_id`, order
//! them causally (parents before children, siblings by start time) and
//! compute the critical-path breakdown: how the trace's wall-clock
//! time divides across phase self-times, e.g. "82% solve, 11% queue,
//! 4% marshal". [`render`] turns one [`Timeline`] into the text the
//! binary prints; the integration tests assert on the same structures.

use std::collections::{BTreeMap, HashMap, HashSet};

use crate::trace::SpanRecord;

/// One phase's share of a trace's wall-clock window.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseShare {
    /// Component that recorded the phase.
    pub component: String,
    /// Phase name.
    pub phase: String,
    /// Total self-time nanoseconds spent in this phase (span durations
    /// minus the time covered by spans temporally nested inside them).
    pub nanos: u64,
    /// `nanos` over the trace's whole wall-clock window (0.0–1.0).
    pub fraction: f64,
}

/// One span placed in the causal order, with its tree depth.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimelineEntry {
    /// Nesting depth: 0 for roots, parent depth + 1 below.
    pub depth: usize,
    /// The span itself.
    pub span: SpanRecord,
}

/// A stitched trace: every known span of one `trace_id`, causally
/// ordered, plus the self-time breakdown of its wall-clock window.
#[derive(Debug, Clone, PartialEq)]
pub struct Timeline {
    /// The trace identity.
    pub trace_id: u128,
    /// Earliest span start in the trace (unix nanos).
    pub start_nanos: u64,
    /// Latest span end in the trace (unix nanos).
    pub end_nanos: u64,
    /// Spans in causal order: parents before children, siblings by
    /// start time; orphans (parent never scraped) follow as extra
    /// roots rather than being dropped.
    pub entries: Vec<TimelineEntry>,
    /// Self-time phase shares, largest first.
    pub breakdown: Vec<PhaseShare>,
}

impl Timeline {
    /// The trace's wall-clock window in nanoseconds.
    pub fn total_nanos(&self) -> u64 {
        self.end_nanos.saturating_sub(self.start_nanos)
    }
}

/// Group `records` by trace, causally order each group and compute its
/// breakdown. Traceless records (`trace_id` 0) are skipped — they
/// belong to no request timeline. Duplicate span ids (the same span
/// scraped twice) are kept once. Timelines come back oldest first.
pub fn stitch(records: &[SpanRecord]) -> Vec<Timeline> {
    let mut by_trace: BTreeMap<u128, Vec<SpanRecord>> = BTreeMap::new();
    let mut seen: HashSet<(u128, u64)> = HashSet::new();
    for r in records {
        if r.trace_id == 0 {
            continue;
        }
        if r.span_id != 0 && !seen.insert((r.trace_id, r.span_id)) {
            continue;
        }
        by_trace.entry(r.trace_id).or_default().push(r.clone());
    }
    let mut timelines: Vec<Timeline> = by_trace.into_values().map(stitch_one).collect();
    timelines.sort_by_key(|t| t.start_nanos);
    timelines
}

fn stitch_one(mut spans: Vec<SpanRecord>) -> Timeline {
    spans.sort_by_key(|s| (s.start_unix_nanos, s.end_unix_nanos, s.span_id));
    let trace_id = spans[0].trace_id;
    let start_nanos = spans.iter().map(|s| s.start_unix_nanos).min().unwrap_or(0);
    let end_nanos = spans.iter().map(|s| s.end_unix_nanos).max().unwrap_or(0);

    let ids: HashSet<u64> = spans.iter().map(|s| s.span_id).collect();
    // Children grouped by parent, already in start order because
    // `spans` is sorted. A span whose parent was never scraped is an
    // orphan root: still shown, just not nested.
    let mut children: HashMap<u64, Vec<usize>> = HashMap::new();
    let mut roots: Vec<usize> = Vec::new();
    for (i, s) in spans.iter().enumerate() {
        if s.parent_span != 0 && ids.contains(&s.parent_span) && s.parent_span != s.span_id {
            children.entry(s.parent_span).or_default().push(i);
        } else {
            roots.push(i);
        }
    }

    let mut entries = Vec::with_capacity(spans.len());
    let mut placed = vec![false; spans.len()];
    // Iterative DFS so a deep (or cyclic, if ids were forged) trace
    // cannot blow the stack.
    let mut stack: Vec<(usize, usize)> = roots.iter().rev().map(|&i| (i, 0)).collect();
    while let Some((i, depth)) = stack.pop() {
        if placed[i] {
            continue;
        }
        placed[i] = true;
        entries.push(TimelineEntry { depth, span: spans[i].clone() });
        if let Some(kids) = children.get(&spans[i].span_id) {
            for &k in kids.iter().rev() {
                stack.push((k, depth + 1));
            }
        }
    }
    // Anything a cycle kept unreached still gets shown as a root.
    for (i, done) in placed.iter().enumerate() {
        if !done {
            entries.push(TimelineEntry { depth: 0, span: spans[i].clone() });
        }
    }

    let breakdown = breakdown_of(&spans, end_nanos.saturating_sub(start_nanos));
    Timeline { trace_id, start_nanos, end_nanos, entries, breakdown }
}

/// Each phase's share is its *self-time*: span duration minus the time
/// covered by spans temporally nested inside it. Containment is by
/// interval, not by the causal tree — the client's `wait` span encloses
/// the server's queue/solve/encode in time even though they hang off
/// the attempt span causally, so tree-leaf accounting would count the
/// solve twice (once as itself, once inside `wait`). Self-times divide
/// the window without double counting.
fn breakdown_of(spans: &[SpanRecord], window_nanos: u64) -> Vec<PhaseShare> {
    // Containers sort before the spans they contain.
    let mut order: Vec<usize> = (0..spans.len()).collect();
    order.sort_by_key(|&i| {
        (spans[i].start_unix_nanos, std::cmp::Reverse(spans[i].end_unix_nanos))
    });
    // Sweep with a nesting stack: each span credits the innermost span
    // whose interval overlaps it with the overlapping portion of its
    // duration; grandchildren credit the child, which in turn credits
    // the parent, so nothing is subtracted twice. Partially overlapping
    // spans (clock skew across hosts) credit only the overlap and never
    // join the stack themselves — a skewed span on the stack would
    // absorb credit for later fully-contained spans while its own time
    // is never subtracted from the enclosing span, inflating the
    // breakdown past the trace window.
    let mut covered = vec![0u64; spans.len()];
    let mut stack: Vec<usize> = Vec::new();
    for &i in &order {
        let s = &spans[i];
        while let Some(&top) = stack.last() {
            if spans[top].end_unix_nanos <= s.start_unix_nanos {
                stack.pop();
            } else {
                break;
            }
        }
        match stack.last() {
            Some(&top) => {
                let top_end = spans[top].end_unix_nanos;
                covered[top] +=
                    top_end.min(s.end_unix_nanos).saturating_sub(s.start_unix_nanos);
                if top_end >= s.end_unix_nanos {
                    stack.push(i);
                }
            }
            None => stack.push(i),
        }
    }
    let mut acc: BTreeMap<(String, String), u64> = BTreeMap::new();
    for (i, s) in spans.iter().enumerate() {
        let self_nanos = s.duration_nanos().saturating_sub(covered[i]);
        if self_nanos == 0 {
            continue; // instantaneous points carry no critical-path time
        }
        *acc.entry((s.component.clone(), s.phase.clone())).or_default() += self_nanos;
    }
    let mut shares: Vec<PhaseShare> = acc
        .into_iter()
        .map(|((component, phase), nanos)| PhaseShare {
            component,
            phase,
            nanos,
            fraction: if window_nanos == 0 { 0.0 } else { nanos as f64 / window_nanos as f64 },
        })
        .collect();
    shares.sort_by_key(|s| std::cmp::Reverse(s.nanos));
    shares
}

fn fmt_nanos(nanos: u64) -> String {
    if nanos >= 1_000_000_000 {
        format!("{:.2}s", nanos as f64 / 1e9)
    } else if nanos >= 1_000_000 {
        format!("{:.2}ms", nanos as f64 / 1e6)
    } else if nanos >= 1_000 {
        format!("{:.1}us", nanos as f64 / 1e3)
    } else {
        format!("{nanos}ns")
    }
}

/// Render one stitched timeline as the text `netsl-trace` prints:
/// header, indented causal span tree with offsets from trace start,
/// then the critical-path breakdown line.
pub fn render(t: &Timeline) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "trace {:032x} · {} spans · total {}\n",
        t.trace_id,
        t.entries.len(),
        fmt_nanos(t.total_nanos()),
    ));
    for e in &t.entries {
        let s = &e.span;
        let offset = s.start_unix_nanos.saturating_sub(t.start_nanos);
        out.push_str(&format!(
            "  +{:>9}  {:>9}  {}{}/{}",
            fmt_nanos(offset),
            fmt_nanos(s.duration_nanos()),
            "  ".repeat(e.depth),
            s.component,
            s.phase,
        ));
        if s.request_id != 0 {
            out.push_str(&format!("  req={}", s.request_id));
        }
        if !s.detail.is_empty() {
            out.push_str(&format!("  [{}]", s.detail));
        }
        out.push('\n');
    }
    if !t.breakdown.is_empty() {
        let parts: Vec<String> = t
            .breakdown
            .iter()
            .take(8)
            .map(|p| format!("{:.0}% {}/{}", p.fraction * 100.0, p.component, p.phase))
            .collect();
        out.push_str(&format!("  critical path: {}\n", parts.join(", ")));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(
        trace: u128,
        span: u64,
        parent: u64,
        component: &str,
        phase: &str,
        start: u64,
        end: u64,
    ) -> SpanRecord {
        SpanRecord {
            trace_id: trace,
            span_id: span,
            parent_span: parent,
            request_id: 9,
            component: component.into(),
            phase: phase.into(),
            start_unix_nanos: start,
            end_unix_nanos: end,
            detail: String::new(),
        }
    }

    #[test]
    fn stitches_causal_order_across_components() {
        let records = vec![
            rec(1, 30, 20, "server", "solve", 820, 400_820),
            rec(1, 10, 0, "client", "call", 0, 500_000),
            rec(1, 20, 10, "client", "attempt", 500, 450_500),
            rec(1, 31, 20, "server", "queue", 700, 820),
            rec(1, 21, 10, "client", "rank", 100, 400),
        ];
        let timelines = stitch(&records);
        assert_eq!(timelines.len(), 1);
        let t = &timelines[0];
        let order: Vec<(&str, usize)> =
            t.entries.iter().map(|e| (e.span.phase.as_str(), e.depth)).collect();
        assert_eq!(
            order,
            vec![("call", 0), ("rank", 1), ("attempt", 1), ("queue", 2), ("solve", 2)],
            "parents precede children, siblings in start order"
        );
        assert_eq!(t.total_nanos(), 500_000);
        // Self-times: solve 400k dominates; call and attempt keep only
        // the ~50k each not covered by spans nested inside them.
        assert_eq!(t.breakdown[0].phase, "solve");
        assert!((t.breakdown[0].fraction - 0.8).abs() < 0.01);
        let rendered = render(t);
        assert!(rendered.contains("server/solve"));
        assert!(rendered.contains("critical path:"));
        assert!(rendered.contains("80% server/solve"));
    }

    #[test]
    fn orphans_kept_as_roots_and_duplicates_dropped() {
        let records = vec![
            rec(1, 10, 0, "client", "call", 0, 100),
            rec(1, 50, 9999, "server", "solve", 10, 90), // parent never scraped
            rec(1, 10, 0, "client", "call", 0, 100),     // scraped twice
        ];
        let t = &stitch(&records)[0];
        assert_eq!(t.entries.len(), 2);
        assert!(t.entries.iter().all(|e| e.depth == 0));
    }

    #[test]
    fn traceless_records_are_skipped_and_traces_split() {
        let records = vec![
            rec(0, 1, 0, "agent", "heartbeat", 0, 5),
            rec(2, 2, 0, "client", "call", 200, 300),
            rec(1, 3, 0, "client", "call", 0, 100),
        ];
        let timelines = stitch(&records);
        assert_eq!(timelines.len(), 2);
        assert_eq!(timelines[0].trace_id, 1, "oldest trace first");
        assert_eq!(timelines[1].trace_id, 2);
    }

    #[test]
    fn empty_input_stitches_to_nothing() {
        assert!(stitch(&[]).is_empty());
    }

    #[test]
    fn skewed_span_cannot_become_a_credit_sink() {
        // Regression: a partially overlapping span (cross-host clock
        // skew) used to join the nesting stack, absorb credit for later
        // fully-contained spans, and never be subtracted from its own
        // container — A=[0,100], B=[50,150], C=[60,70] credited
        // 100+90+10 = 200ns of self-time against a 150ns window.
        let records = vec![
            rec(1, 10, 0, "client", "call", 0, 100),
            rec(1, 20, 10, "server", "solve", 50, 150),
            rec(1, 30, 20, "server", "encode", 60, 70),
        ];
        let t = &stitch(&records)[0];
        let total: u64 = t.breakdown.iter().map(|p| p.nanos).sum();
        assert_eq!(t.total_nanos(), 150);
        assert!(total <= t.total_nanos(), "self-times fit the window, got {total}");
        // The skewed solve span credits call with only the 50ns overlap
        // and encode's 10ns is subtracted from call (the established
        // container), not absorbed by solve.
        let nanos_of = |phase: &str| {
            t.breakdown.iter().find(|p| p.phase == phase).map(|p| p.nanos).unwrap_or(0)
        };
        assert_eq!(nanos_of("solve"), 100);
        assert_eq!(nanos_of("call"), 40);
        assert_eq!(nanos_of("encode"), 10);
    }
}
