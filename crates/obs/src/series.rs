//! Windowed time series over periodic [`StatsSnapshot`]s.
//!
//! A [`WindowedSeries`] is a fixed-size ring of per-tick *deltas*: a
//! sampler thread in each daemon feeds it one cumulative snapshot per
//! tick, and the series stores what changed since the previous tick —
//! counter increments, latest gauge levels, and per-bucket histogram
//! increments (with the cumulative exemplars carried along). From those
//! slots it answers rate, derivative, and rolling-quantile queries over
//! any trailing window, and it collapses into the compact
//! [`StatsDigest`] that agents gossip fleet-wide.
//!
//! Everything lives behind one short mutex taken once per tick and once
//! per query — the sampler path never touches request hot paths, which
//! keep their lock-free atomic instruments.

use std::collections::VecDeque;

use parking_lot::Mutex;

use crate::metrics::{HistogramSnapshot, StatsSnapshot};

/// How a daemon samples its registry into a series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SeriesConfig {
    /// Seconds between samples.
    pub tick_secs: f64,
    /// Ring length: how many ticks of history are retained.
    pub slots: usize,
}

impl Default for SeriesConfig {
    /// 1 s × 120 slots — two minutes of per-second history.
    fn default() -> Self {
        SeriesConfig { tick_secs: 1.0, slots: 120 }
    }
}

/// One tick's worth of change.
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesSlot {
    /// Wall-clock seconds (unix epoch) the sample was taken at.
    pub at_unix_secs: f64,
    /// Seconds actually elapsed since the previous sample (close to the
    /// configured tick, but measured — sleeps are not exact).
    pub elapsed_secs: f64,
    /// Counter increments during the tick, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Gauge levels at sample time, sorted by name.
    pub gauges: Vec<(String, i64)>,
    /// Per-bucket histogram increments during the tick (exemplars and
    /// `max_exemplar` are the cumulative values at sample time — an
    /// exemplar is a pointer, not an additive quantity).
    pub histograms: Vec<HistogramSnapshot>,
}

#[derive(Debug, Default)]
struct SeriesInner {
    ring: VecDeque<SeriesSlot>,
    last: Option<(StatsSnapshot, f64)>,
}

/// A bounded ring of per-tick snapshot deltas (see the module docs).
#[derive(Debug)]
pub struct WindowedSeries {
    config: SeriesConfig,
    inner: Mutex<SeriesInner>,
}

impl Default for WindowedSeries {
    fn default() -> Self {
        Self::new(SeriesConfig::default())
    }
}

impl WindowedSeries {
    /// An empty series with the given tick/ring geometry.
    pub fn new(config: SeriesConfig) -> Self {
        WindowedSeries {
            config: SeriesConfig { tick_secs: config.tick_secs.max(1e-3), slots: config.slots.max(2) },
            inner: Mutex::new(SeriesInner::default()),
        }
    }

    /// The tick/ring geometry.
    pub fn config(&self) -> SeriesConfig {
        self.config
    }

    /// Feed one cumulative snapshot taken at `at_unix_secs`. The first
    /// sample only seeds the baseline (no slot is produced — there is
    /// nothing to delta against yet).
    pub fn record(&self, snapshot: StatsSnapshot, at_unix_secs: f64) {
        let mut inner = self.inner.lock();
        if let Some((prev, prev_at)) = &inner.last {
            let elapsed = (at_unix_secs - prev_at).max(1e-9);
            let slot = delta_slot(prev, &snapshot, at_unix_secs, elapsed);
            inner.ring.push_back(slot);
            while inner.ring.len() > self.config.slots {
                inner.ring.pop_front();
            }
        }
        inner.last = Some((snapshot, at_unix_secs));
    }

    /// How many delta slots are currently retained.
    pub fn len(&self) -> usize {
        self.inner.lock().ring.len()
    }

    /// Whether no delta slot has been produced yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The retained slots, oldest first.
    pub fn slots(&self) -> Vec<SeriesSlot> {
        self.inner.lock().ring.iter().cloned().collect()
    }

    /// Mean events/second of `counter` over the trailing `window_secs`
    /// (clamped to the history actually retained). 0 when no slots.
    pub fn rate(&self, counter: &str, window_secs: f64) -> f64 {
        let inner = self.inner.lock();
        let (mut events, mut secs) = (0u64, 0f64);
        for slot in window(&inner.ring, window_secs) {
            events += lookup_u64(&slot.counters, counter);
            secs += slot.elapsed_secs;
        }
        if secs <= 0.0 {
            0.0
        } else {
            events as f64 / secs
        }
    }

    /// First derivative of `gauge` over the trailing window: (last −
    /// first) / elapsed, in units per second. `None` without at least
    /// two slots in the window.
    pub fn gauge_derivative(&self, gauge: &str, window_secs: f64) -> Option<f64> {
        let inner = self.inner.lock();
        let slots: Vec<&SeriesSlot> = window(&inner.ring, window_secs).collect();
        let (first, last) = (slots.first()?, slots.last()?);
        let dt = last.at_unix_secs - first.at_unix_secs;
        if slots.len() < 2 || dt <= 0.0 {
            return None;
        }
        let dv = lookup_i64(&last.gauges, gauge) - lookup_i64(&first.gauges, gauge);
        Some(dv as f64 / dt)
    }

    /// Latest sampled level of `gauge` (`None` before any slot).
    pub fn gauge_last(&self, gauge: &str) -> Option<i64> {
        let inner = self.inner.lock();
        inner.ring.back().map(|s| lookup_i64(&s.gauges, gauge))
    }

    /// The histogram of samples recorded during the trailing window:
    /// per-bucket increments summed across the window's slots, with the
    /// most recent slot's exemplars carried along. Quantiles of the
    /// result are *rolling* quantiles — `p99 over the last 30 s`, not
    /// since process start. `None` when the window holds no slot that
    /// saw the histogram.
    pub fn windowed_histogram(&self, name: &str, window_secs: f64) -> Option<HistogramSnapshot> {
        let inner = self.inner.lock();
        let mut acc: Option<HistogramSnapshot> = None;
        for slot in window(&inner.ring, window_secs) {
            let Some(h) = slot.histograms.iter().find(|h| h.name == name) else {
                continue;
            };
            match &mut acc {
                None => acc = Some(h.clone()),
                Some(acc) => {
                    acc.count += h.count;
                    acc.sum_secs += h.sum_secs;
                    for (a, b) in acc.buckets.iter_mut().zip(&h.buckets) {
                        *a += b;
                    }
                    // Later slots are fresher: their exemplars win.
                    acc.exemplars = h.exemplars.clone();
                    acc.max_exemplar = h.max_exemplar;
                }
            }
        }
        acc
    }

    /// Collapse the trailing window into a compact [`StatsDigest`] for
    /// gossip: counter rates, latest gauges, and p50/p95/p99 (+ p99
    /// exemplar) per histogram.
    pub fn digest(&self, origin: &str, component: &str, window_secs: f64) -> StatsDigest {
        let inner = self.inner.lock();
        let slots: Vec<&SeriesSlot> = window(&inner.ring, window_secs).collect();
        // `+ 0.0` normalises the empty-window sum (IEEE -0.0) to +0.0 so
        // an idle digest reports a plain zero window.
        let covered: f64 = slots.iter().map(|s| s.elapsed_secs).sum::<f64>() + 0.0;
        let mut counters: Vec<(String, f64)> = Vec::new();
        let mut histograms: Vec<HistogramSnapshot> = Vec::new();
        for slot in &slots {
            for (name, v) in &slot.counters {
                match counters.iter_mut().find(|(n, _)| n == name) {
                    Some((_, total)) => *total += *v as f64,
                    None => counters.push((name.clone(), *v as f64)),
                }
            }
            for h in &slot.histograms {
                match histograms.iter_mut().find(|a| a.name == h.name) {
                    Some(acc) => {
                        acc.count += h.count;
                        acc.sum_secs += h.sum_secs;
                        for (a, b) in acc.buckets.iter_mut().zip(&h.buckets) {
                            *a += b;
                        }
                        acc.exemplars = h.exemplars.clone();
                        acc.max_exemplar = h.max_exemplar;
                    }
                    None => histograms.push(h.clone()),
                }
            }
        }
        if covered > 0.0 {
            for (_, v) in &mut counters {
                *v /= covered;
            }
        }
        counters.sort_by(|a, b| a.0.cmp(&b.0));
        let quantiles = histograms
            .iter()
            .filter(|h| h.count > 0)
            .map(|h| DigestQuantiles {
                name: h.name.clone(),
                count: h.count,
                p50_secs: h.quantile_secs(0.50),
                p95_secs: h.quantile_secs(0.95),
                p99_secs: h.quantile_secs(0.99),
                p99_exemplar: h.exemplar_near(0.99),
            })
            .collect();
        StatsDigest {
            origin: origin.to_string(),
            component: component.to_string(),
            age_secs: 0.0,
            window_secs: covered,
            counters,
            gauges: slots.last().map(|s| s.gauges.clone()).unwrap_or_default(),
            quantiles,
        }
    }
}

/// Wall-clock seconds since the unix epoch — the time axis sampler
/// threads feed [`WindowedSeries::record`] with.
pub fn unix_now_secs() -> f64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .unwrap_or_default()
        .as_secs_f64()
}

/// Slots inside the trailing `window_secs`, oldest first.
fn window(ring: &VecDeque<SeriesSlot>, window_secs: f64) -> impl Iterator<Item = &SeriesSlot> {
    let newest = ring.back().map(|s| s.at_unix_secs).unwrap_or(0.0);
    ring.iter().filter(move |s| newest - s.at_unix_secs <= window_secs.max(0.0))
}

fn lookup_u64(items: &[(String, u64)], name: &str) -> u64 {
    items.iter().find(|(n, _)| n == name).map(|(_, v)| *v).unwrap_or(0)
}

fn lookup_i64(items: &[(String, i64)], name: &str) -> i64 {
    items.iter().find(|(n, _)| n == name).map(|(_, v)| *v).unwrap_or(0)
}

/// Delta of two cumulative snapshots. Counters and histogram buckets
/// subtract (saturating: a restarted instrument just reads as zero);
/// gauges take the new level.
fn delta_slot(
    prev: &StatsSnapshot,
    next: &StatsSnapshot,
    at_unix_secs: f64,
    elapsed_secs: f64,
) -> SeriesSlot {
    let counters = next
        .counters
        .iter()
        .map(|(n, v)| (n.clone(), v.saturating_sub(prev.counter(n))))
        .collect();
    let histograms = next
        .histograms
        .iter()
        .map(|h| {
            let base = prev.histogram(&h.name);
            HistogramSnapshot {
                name: h.name.clone(),
                count: h.count.saturating_sub(base.map(|b| b.count).unwrap_or(0)),
                sum_secs: (h.sum_secs - base.map(|b| b.sum_secs).unwrap_or(0.0)).max(0.0),
                buckets: h
                    .buckets
                    .iter()
                    .enumerate()
                    .map(|(i, v)| {
                        v.saturating_sub(
                            base.and_then(|b| b.buckets.get(i)).copied().unwrap_or(0),
                        )
                    })
                    .collect(),
                exemplars: h.exemplars.clone(),
                max_exemplar: h.max_exemplar,
            }
        })
        .collect();
    SeriesSlot {
        at_unix_secs,
        elapsed_secs,
        counters,
        gauges: next.gauges.clone(),
        histograms,
    }
}

/// The compact per-peer stats summary agents replicate over gossip: one
/// entry per daemon (`origin` is its listen address), holding counter
/// *rates* over the trailing window, latest gauge levels, and rolling
/// latency quantiles with the p99 trace exemplar. Freshness travels as
/// a relative `age_secs` exactly like registry gossip entries, so
/// receivers with different clocks still agree on which copy is newer.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct StatsDigest {
    /// Listen address of the daemon the stats describe.
    pub origin: String,
    /// `"agent"` / `"server"` / … — which kind of daemon.
    pub component: String,
    /// How old this digest is, seconds (0 at the origin; accumulates
    /// hop-relative age as it travels, like gossip registry entries).
    pub age_secs: f64,
    /// Seconds of history the rates/quantiles summarize.
    pub window_secs: f64,
    /// Counter rates over the window, events/second, sorted by name.
    pub counters: Vec<(String, f64)>,
    /// Latest gauge levels, sorted by name.
    pub gauges: Vec<(String, i64)>,
    /// Rolling quantiles per histogram.
    pub quantiles: Vec<DigestQuantiles>,
}

/// Rolling latency quantiles of one histogram over the digest window.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DigestQuantiles {
    /// Histogram name (e.g. `server.compute_secs`).
    pub name: String,
    /// Samples recorded during the window.
    pub count: u64,
    /// Rolling p50, seconds.
    pub p50_secs: f64,
    /// Rolling p95, seconds.
    pub p95_secs: f64,
    /// Rolling p99, seconds.
    pub p99_secs: f64,
    /// Trace exemplar nearest the p99 bucket (0 = none captured).
    pub p99_exemplar: u128,
}

impl StatsDigest {
    /// Look up a counter rate by name (0 when absent).
    pub fn rate(&self, name: &str) -> f64 {
        self.counters.iter().find(|(n, _)| n == name).map(|(_, v)| *v).unwrap_or(0.0)
    }

    /// Look up a gauge level by name (0 when absent).
    pub fn gauge(&self, name: &str) -> i64 {
        lookup_i64(&self.gauges, name)
    }

    /// Look up a histogram's rolling quantiles by name.
    pub fn quantiles(&self, name: &str) -> Option<&DigestQuantiles> {
        self.quantiles.iter().find(|q| q.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{MetricsRegistry, HISTOGRAM_BUCKETS};

    fn tick(reg: &MetricsRegistry, series: &WindowedSeries, at: f64) {
        series.record(reg.snapshot("test"), at);
    }

    #[test]
    fn first_sample_seeds_later_samples_delta() {
        let reg = MetricsRegistry::new();
        let series = WindowedSeries::new(SeriesConfig { tick_secs: 1.0, slots: 8 });
        reg.counter("x.events").add(100);
        tick(&reg, &series, 10.0);
        assert!(series.is_empty(), "baseline produces no slot");
        reg.counter("x.events").add(5);
        tick(&reg, &series, 11.0);
        assert_eq!(series.len(), 1);
        let slot = &series.slots()[0];
        assert_eq!(lookup_u64(&slot.counters, "x.events"), 5, "delta, not cumulative");
        assert!((series.rate("x.events", 60.0) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn ring_is_bounded_and_rates_window() {
        let reg = MetricsRegistry::new();
        let series = WindowedSeries::new(SeriesConfig { tick_secs: 1.0, slots: 4 });
        for i in 0..10 {
            reg.counter("x.events").add(i);
            tick(&reg, &series, i as f64);
        }
        assert_eq!(series.len(), 4, "ring bounded at 4 slots");
        // Last 4 deltas are 6, 7, 8, 9 over 4 seconds.
        assert!((series.rate("x.events", 100.0) - 7.5).abs() < 1e-9);
        // A 1-second window sees only the newest delta (9 over 1 s) —
        // window membership is by timestamp distance from the newest.
        assert!((series.rate("x.events", 1.0) - 8.5).abs() < 1e-9);
    }

    #[test]
    fn gauges_take_levels_and_derivatives() {
        let reg = MetricsRegistry::new();
        let series = WindowedSeries::new(SeriesConfig { tick_secs: 1.0, slots: 8 });
        reg.gauge("x.depth").set(2);
        tick(&reg, &series, 0.0);
        reg.gauge("x.depth").set(4);
        tick(&reg, &series, 1.0);
        reg.gauge("x.depth").set(8);
        tick(&reg, &series, 2.0);
        assert_eq!(series.gauge_last("x.depth"), Some(8));
        let d = series.gauge_derivative("x.depth", 100.0).unwrap();
        assert!((d - 4.0).abs() < 1e-9, "8-4 over 1s window pair: {d}");
    }

    #[test]
    fn windowed_histogram_sums_deltas_and_keeps_fresh_exemplars() {
        let reg = MetricsRegistry::new();
        let series = WindowedSeries::new(SeriesConfig { tick_secs: 1.0, slots: 8 });
        let h = reg.histogram("x.secs");
        h.record_secs_traced(1e-3, 0x1);
        tick(&reg, &series, 0.0);
        h.record_secs_traced(1e-3, 0x2);
        h.record_secs_traced(0.3, 0x3);
        tick(&reg, &series, 1.0);
        let w = series.windowed_histogram("x.secs", 100.0).unwrap();
        assert_eq!(w.count, 2, "only samples after the baseline");
        assert_eq!(w.buckets.iter().sum::<u64>(), 2);
        assert_eq!(w.exemplar_near(0.99), 0x3);
        assert_eq!(w.buckets.len(), HISTOGRAM_BUCKETS);
    }

    #[test]
    fn digest_summarizes_rates_gauges_and_quantiles() {
        let reg = MetricsRegistry::new();
        let series = WindowedSeries::new(SeriesConfig { tick_secs: 1.0, slots: 8 });
        tick(&reg, &series, 0.0);
        reg.counter("x.requests").add(30);
        reg.gauge("x.depth").set(5);
        let h = reg.histogram("x.secs");
        for _ in 0..97 {
            h.record_secs_traced(1e-3, 0xAB);
        }
        for _ in 0..3 {
            h.record_secs_traced(2.0, 0xCD);
        }
        tick(&reg, &series, 3.0);
        let d = series.digest("srv0", "server", 100.0);
        assert_eq!(d.origin, "srv0");
        assert_eq!(d.component, "server");
        assert!((d.rate("x.requests") - 10.0).abs() < 1e-9, "30 events / 3 s");
        assert_eq!(d.gauge("x.depth"), 5);
        let q = d.quantiles("x.secs").unwrap();
        assert_eq!(q.count, 100);
        assert!(q.p50_secs <= q.p95_secs && q.p95_secs <= q.p99_secs);
        assert_eq!(q.p99_exemplar, 0xCD, "p99 exemplar points at the slow trace");
        assert!((d.window_secs - 3.0).abs() < 1e-9);
    }
}
