//! # netsolve-obs
//!
//! The observability layer for the live NetSolve daemons: a lock-cheap
//! [`MetricsRegistry`] (atomic counters, gauges and fixed-bucket
//! log-scale histograms — hand-rolled, no external deps, matching the
//! rest of the workspace) plus a [`Tracer`] recording typed
//! distributed-tracing [`Span`]s keyed by a wire-propagated 128-bit
//! `trace_id`, and the [`stitch`] module that merges span records
//! scraped from many processes into causal per-trace timelines.
//!
//! Daemons hold one registry each and bump instruments on the hot path
//! with single atomic operations; a [`StatsSnapshot`] is taken on demand
//! (the `StatsQuery` wire message, the `netsl-stats` bin, test
//! assertions) and is plain data, so `netsolve-proto` can marshal it
//! without this crate knowing anything about the wire format.

#![warn(missing_docs)]

pub mod metrics;
pub mod series;
pub mod stitch;
pub mod trace;

pub use metrics::{
    Counter, Gauge, Histogram, HistogramSnapshot, MetricsRegistry, StatsSnapshot, HISTOGRAM_BUCKETS,
};
pub use series::{
    unix_now_secs, DigestQuantiles, SeriesConfig, SeriesSlot, StatsDigest, WindowedSeries,
};
pub use stitch::{render, stitch, PhaseShare, Timeline, TimelineEntry};
pub use trace::{Span, SpanContext, SpanRecord, SpanTimer, Tracer};
