#!/usr/bin/env bash
# Regenerate every reconstructed NetSolve experiment (R1-R8) into results/.
# Usage: scripts/run_all_experiments.sh [results-dir]
set -euo pipefail

cd "$(dirname "$0")/.."
out="${1:-results}"
mkdir -p "$out"

cargo build --release -p netsolve-bench --bins

for exp in r1_overhead r2_load_balance r3_prediction r4_workload_policy \
           r5_fault_tolerance r6_scalability r7_network_crossover r8_marshal; do
    echo "=== $exp ==="
    ./target/release/"$exp" | tee "$out/$exp.txt"
done

echo
echo "All experiment outputs written to $out/ — compare with EXPERIMENTS.md."
