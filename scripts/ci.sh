#!/usr/bin/env bash
# The tier-1 gate: everything a PR must pass before merge.
# Usage: scripts/ci.sh
set -euo pipefail

cd "$(dirname "$0")/.."

echo "=== build (release) ==="
cargo build --release --workspace

echo "=== build (all bins, incl. netsl-stats and netsl-trace) ==="
cargo build --bins

echo "=== tests ==="
cargo test -q
cargo test --workspace -q

echo "=== regression tests (retry cap, request ids, accept-loop cap, stats) ==="
cargo test --test observability -q
cargo test --test chaos_soak -q
cargo test --test tracing -q

echo "=== netsl-trace smoke (live TCP trio, stitched timeline) ==="
# Boot a real agent + server on loopback, run one traced call, then pull
# and stitch the request timeline exactly as an operator would.
AGENT_PORT=19751
SERVER_PORT=19752
TRACE_DUMP=$(mktemp)
./target/debug/ns-agent --listen 127.0.0.1:${AGENT_PORT} &
AGENT_PID=$!
trap 'kill ${AGENT_PID} ${SERVER_PID:-} 2>/dev/null || true; rm -f "${TRACE_DUMP}"' EXIT
sleep 0.3
./target/debug/ns-server --agent 127.0.0.1:${AGENT_PORT} --listen 127.0.0.1:${SERVER_PORT} &
SERVER_PID=$!
sleep 0.3
./target/debug/ns-client --agent 127.0.0.1:${AGENT_PORT} \
    --trace-dump "${TRACE_DUMP}" demo dnrm2 256
TIMELINE=$(./target/debug/netsl-trace --dump "${TRACE_DUMP}" \
    127.0.0.1:${AGENT_PORT} 127.0.0.1:${SERVER_PORT})
echo "${TIMELINE}"
echo "${TIMELINE}" | grep -q "server/solve" || {
    echo "netsl-trace smoke: no server/solve span in stitched timeline"; exit 1; }
echo "${TIMELINE}" | grep -q "critical path:" || {
    echo "netsl-trace smoke: no critical-path breakdown"; exit 1; }
kill ${AGENT_PID} ${SERVER_PID} 2>/dev/null || true

echo "=== wire-path bench smoke (single-pass writer vs legacy) ==="
cargo build --release -p netsolve-bench --bin r1_wire_path
./target/release/r1_wire_path --quick

echo "=== trace-overhead bench smoke (tracing on vs off) ==="
cargo build --release -p netsolve-bench --bin r9_trace_overhead
./target/release/r9_trace_overhead --quick

echo "=== clippy (deny warnings) ==="
cargo clippy --workspace --all-targets -- -D warnings

echo
echo "CI gate passed."
