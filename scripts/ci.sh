#!/usr/bin/env bash
# The tier-1 gate: everything a PR must pass before merge.
# Usage: scripts/ci.sh
set -euo pipefail

cd "$(dirname "$0")/.."

echo "=== build (release) ==="
cargo build --release --workspace

echo "=== build (all bins, incl. netsl-stats) ==="
cargo build --bins

echo "=== tests ==="
cargo test -q
cargo test --workspace -q

echo "=== regression tests (retry cap, request ids, accept-loop cap, stats) ==="
cargo test --test observability -q
cargo test --test chaos_soak -q

echo "=== wire-path bench smoke (single-pass writer vs legacy) ==="
cargo build --release -p netsolve-bench --bin r1_wire_path
./target/release/r1_wire_path --quick

echo "=== clippy (deny warnings) ==="
cargo clippy --workspace --all-targets -- -D warnings

echo
echo "CI gate passed."
