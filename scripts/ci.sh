#!/usr/bin/env bash
# The tier-1 gate: everything a PR must pass before merge.
# Usage: scripts/ci.sh
set -euo pipefail

cd "$(dirname "$0")/.."

echo "=== build (release) ==="
cargo build --release --workspace

echo "=== build (all bins, incl. netsl-stats and netsl-trace) ==="
cargo build --bins

echo "=== tests ==="
cargo test -q
cargo test --workspace -q

echo "=== regression tests (retry cap, request ids, accept-loop cap, stats) ==="
cargo test --test observability -q
cargo test --test chaos_soak -q
cargo test --test tracing -q

echo "=== netsl-trace smoke (live TCP trio, stitched timeline) ==="
# Boot a real agent + server on loopback, run one traced call, then pull
# and stitch the request timeline exactly as an operator would.
AGENT_PORT=19751
SERVER_PORT=19752
TRACE_DUMP=$(mktemp)
./target/debug/ns-agent --listen 127.0.0.1:${AGENT_PORT} &
AGENT_PID=$!
trap 'kill ${AGENT_PID} ${SERVER_PID:-} 2>/dev/null || true; rm -f "${TRACE_DUMP}"' EXIT
sleep 0.3
./target/debug/ns-server --agent 127.0.0.1:${AGENT_PORT} --listen 127.0.0.1:${SERVER_PORT} &
SERVER_PID=$!
sleep 0.3
./target/debug/ns-client --agent 127.0.0.1:${AGENT_PORT} \
    --trace-dump "${TRACE_DUMP}" demo dnrm2 256
TIMELINE=$(./target/debug/netsl-trace --dump "${TRACE_DUMP}" \
    127.0.0.1:${AGENT_PORT} 127.0.0.1:${SERVER_PORT})
echo "${TIMELINE}"
echo "${TIMELINE}" | grep -q "server/solve" || {
    echo "netsl-trace smoke: no server/solve span in stitched timeline"; exit 1; }
echo "${TIMELINE}" | grep -q "critical path:" || {
    echo "netsl-trace smoke: no critical-path breakdown"; exit 1; }
kill ${AGENT_PID} ${SERVER_PID} 2>/dev/null || true

echo "=== solve-cache smoke (live TCP trio, repeated solve must hit) ==="
# Boot a trio with the content-addressed cache on, run the SAME demo
# twice (demo inputs are seeded, so the encodings are identical), and
# check netsl-stats shows the repeat as a cache hit.
CACHE_AGENT_PORT=19771
CACHE_SERVER_PORT=19772
./target/debug/ns-agent --listen 127.0.0.1:${CACHE_AGENT_PORT} &
CACHE_AGENT_PID=$!
trap 'kill ${AGENT_PID} ${SERVER_PID:-} ${CACHE_AGENT_PID} ${CACHE_SERVER_PID:-} 2>/dev/null || true; \
      rm -f "${TRACE_DUMP}"' EXIT
sleep 0.3
./target/debug/ns-server --agent 127.0.0.1:${CACHE_AGENT_PORT} \
    --listen 127.0.0.1:${CACHE_SERVER_PORT} --cache-bytes 16777216 &
CACHE_SERVER_PID=$!
sleep 0.3
for run in 1 2; do
    ./target/debug/ns-client --agent 127.0.0.1:${CACHE_AGENT_PORT} demo dnrm2 256 || {
        echo "cache smoke: demo run ${run} failed"; exit 1; }
done
CACHE_STATS=$(./target/debug/netsl-stats 127.0.0.1:${CACHE_SERVER_PORT})
echo "${CACHE_STATS}"
echo "${CACHE_STATS}" | grep -q "cache" || {
    echo "cache smoke: no cache section in netsl-stats output"; exit 1; }
echo "${CACHE_STATS}" | grep -E "server.cache_hits +[1-9]" -q || {
    echo "cache smoke: repeated demo never hit the cache"; exit 1; }
echo "${CACHE_STATS}" | grep -E "server.cache_corrupt_dropped +0" -q || {
    echo "cache smoke: corrupt entries dropped on a clean run"; exit 1; }
kill ${CACHE_AGENT_PID} ${CACHE_SERVER_PID} 2>/dev/null || true
echo "cache smoke passed: repeated solve served from cache"

echo "=== federation smoke (three agents, SIGKILL one, batch still completes) ==="
# A full-mesh three-agent federation with two servers registered at
# different agents. Gossip replicates both registrations everywhere,
# then one agent is SIGKILLed — the scripted client batch (roster lists
# the dead agent FIRST) must complete with zero failed solves.
FA1=19761; FA2=19762; FA3=19763
FS1=19764; FS2=19765
./target/debug/ns-agent --listen 127.0.0.1:${FA1} --gossip-interval 0.2 \
    --peer 127.0.0.1:${FA2} --peer 127.0.0.1:${FA3} &
FED_A1=$!
./target/debug/ns-agent --listen 127.0.0.1:${FA2} --gossip-interval 0.2 \
    --peer 127.0.0.1:${FA1} --peer 127.0.0.1:${FA3} &
FED_A2=$!
./target/debug/ns-agent --listen 127.0.0.1:${FA3} --gossip-interval 0.2 \
    --peer 127.0.0.1:${FA1} --peer 127.0.0.1:${FA2} &
FED_A3=$!
trap 'kill -9 ${FED_A1} ${FED_A2} ${FED_A3} ${FED_S1:-} ${FED_S2:-} 2>/dev/null || true; \
      rm -f "${TRACE_DUMP}"' EXIT
sleep 0.3
./target/debug/ns-server --agent 127.0.0.1:${FA1} --listen 127.0.0.1:${FS1} --mflops 250 &
FED_S1=$!
./target/debug/ns-server --agent 127.0.0.1:${FA2} --listen 127.0.0.1:${FS2} --mflops 150 &
FED_S2=$!
# Poll for gossip convergence (a fixed sleep flakes on loaded machines):
# agent 3 must learn server 1 purely from gossip before we proceed.
FED_CONVERGED=0
for attempt in $(seq 1 20); do
    if ./target/debug/ns-client --agent 127.0.0.1:${FA3} servers 2>/dev/null \
        | grep -q "${FS1}"; then
        FED_CONVERGED=1; break
    fi
    sleep 0.5
done
[ "${FED_CONVERGED}" -eq 1 ] || {
    echo "federation smoke: agent 3 never learned server 1 via gossip"; exit 1; }
kill -9 ${FED_A1}
for problem in "demo dnrm2 256" "demo dgesv 120" "demo dposv 100" "demo vsort 400"; do
    ./target/debug/ns-client \
        --agent 127.0.0.1:${FA1} --agent 127.0.0.1:${FA2} --agent 127.0.0.1:${FA3} \
        ${problem} || {
        echo "federation smoke: solve '${problem}' failed after agent SIGKILL"; exit 1; }
done
FED_STATS=$(./target/debug/netsl-stats 127.0.0.1:${FA2})
echo "${FED_STATS}" | grep -q "federation" || {
    echo "federation smoke: no federation section in netsl-stats output"; exit 1; }
echo "${FED_STATS}" | grep -q "agent.gossip_rounds" || {
    echo "federation smoke: no gossip_rounds counter in netsl-stats output"; exit 1; }
kill -9 ${FED_A2} ${FED_A3} ${FED_S1} ${FED_S2} 2>/dev/null || true
echo "federation smoke passed: batch completed with zero failed solves"

echo "=== admission overload smoke (queue-bound shed with retry hints) ==="
# A synthetic ~0.2 s/solve server (dnrm2 n=256 at 0.0025 Mflop/s) behind
# a depth-2 admission gate: an 8-client parallel burst must overflow the
# bound and shed with retryable Busy replies, while the gate keeps the
# server itself healthy — a calm follow-up request still solves.
ADM_AGENT_PORT=19781
ADM_SERVER_PORT=19782
./target/debug/ns-agent --listen 127.0.0.1:${ADM_AGENT_PORT} &
ADM_AGENT_PID=$!
trap 'kill -9 ${FED_A1} ${FED_A2} ${FED_A3} ${FED_S1:-} ${FED_S2:-} \
      ${ADM_AGENT_PID} ${ADM_SERVER_PID:-} 2>/dev/null || true; \
      rm -f "${TRACE_DUMP}"' EXIT
sleep 0.3
./target/debug/ns-server --agent 127.0.0.1:${ADM_AGENT_PORT} \
    --listen 127.0.0.1:${ADM_SERVER_PORT} --synthetic --mflops 0.0025 --max-queue 2 &
ADM_SERVER_PID=$!
sleep 0.3
ADM_PIDS=()
for i in $(seq 1 8); do
    ./target/debug/ns-client --agent 127.0.0.1:${ADM_AGENT_PORT} demo dnrm2 256 \
        >/dev/null 2>&1 &
    ADM_PIDS+=($!)
done
ADM_OK=0
for pid in "${ADM_PIDS[@]}"; do
    if wait ${pid}; then ADM_OK=$((ADM_OK+1)); fi
done
[ "${ADM_OK}" -ge 1 ] || {
    echo "admission smoke: every client failed under overload"; exit 1; }
ADM_STATS=$(./target/debug/netsl-stats 127.0.0.1:${ADM_SERVER_PORT})
echo "${ADM_STATS}" | grep -E "server.admission_shed +[1-9]" -q || {
    echo "admission smoke: overload burst never shed"; exit 1; }
./target/debug/ns-client --agent 127.0.0.1:${ADM_AGENT_PORT} demo dnrm2 256 || {
    echo "admission smoke: server wedged after overload"; exit 1; }
kill ${ADM_AGENT_PID} ${ADM_SERVER_PID} 2>/dev/null || true
echo "admission smoke passed: ${ADM_OK}/8 burst clients served, the rest shed"

echo "=== fleet-view smoke (netsl-top over a live trio, exemplar chase) ==="
# An agent with two registered servers: after a scripted burst, one
# netsl-top scrape of the agent must show a row per server with a
# nonzero solve rate, and the p99 exemplar it prints must resolve
# through netsl-trace to a stitched timeline containing the solve span.
TOP_AGENT_PORT=19791
TOP_SERVER1_PORT=19792
TOP_SERVER2_PORT=19793
./target/debug/ns-agent --listen 127.0.0.1:${TOP_AGENT_PORT} &
TOP_AGENT_PID=$!
trap 'kill -9 ${FED_A1} ${FED_A2} ${FED_A3} ${FED_S1:-} ${FED_S2:-} \
      ${ADM_AGENT_PID} ${ADM_SERVER_PID:-} \
      ${TOP_AGENT_PID} ${TOP_SERVER1_PID:-} ${TOP_SERVER2_PID:-} 2>/dev/null || true; \
      rm -f "${TRACE_DUMP}"' EXIT
sleep 0.3
./target/debug/ns-server --agent 127.0.0.1:${TOP_AGENT_PORT} \
    --listen 127.0.0.1:${TOP_SERVER1_PORT} --mflops 250 &
TOP_SERVER1_PID=$!
./target/debug/ns-server --agent 127.0.0.1:${TOP_AGENT_PORT} \
    --listen 127.0.0.1:${TOP_SERVER2_PORT} --mflops 150 &
TOP_SERVER2_PID=$!
sleep 0.3
for i in $(seq 1 6); do
    ./target/debug/ns-client --agent 127.0.0.1:${TOP_AGENT_PORT} demo dnrm2 256 \
        >/dev/null || { echo "fleet smoke: burst solve ${i} failed"; exit 1; }
done
# Digests appear one telemetry tick (1 s) after the burst and reach the
# agent on its next server scrape; poll rather than sleep a guess.
TOP_OK=0
for attempt in $(seq 1 30); do
    TOP_VIEW=$(./target/debug/netsl-top 127.0.0.1:${TOP_AGENT_PORT}) || true
    # Column 3 of a server row is SOLVE/S; the burst must show up as a
    # nonzero rate summed across the two servers.
    TOP_RATE=$(echo "${TOP_VIEW}" | awk -v s1="127.0.0.1:${TOP_SERVER1_PORT}" \
        -v s2="127.0.0.1:${TOP_SERVER2_PORT}" \
        '$1 == s1 || $1 == s2 { sum += $3 } END { print sum + 0 }')
    if echo "${TOP_VIEW}" | grep -q "127.0.0.1:${TOP_SERVER1_PORT}" \
        && echo "${TOP_VIEW}" | grep -q "127.0.0.1:${TOP_SERVER2_PORT}" \
        && awk -v r="${TOP_RATE}" 'BEGIN { exit !(r > 0) }' \
        && echo "${TOP_VIEW}" | grep -Eq "[0-9a-f]{32}"; then
        TOP_OK=1; break
    fi
    sleep 0.5
done
echo "${TOP_VIEW}"
[ "${TOP_OK}" -eq 1 ] || {
    echo "fleet smoke: netsl-top never showed both servers with a solve rate and exemplar"
    exit 1; }
TOP_EXEMPLAR=$(echo "${TOP_VIEW}" | grep -Eo "[0-9a-f]{32}" | head -1)
TOP_TIMELINE=$(./target/debug/netsl-trace --trace "${TOP_EXEMPLAR}" \
    127.0.0.1:${TOP_AGENT_PORT} 127.0.0.1:${TOP_SERVER1_PORT} \
    127.0.0.1:${TOP_SERVER2_PORT})
echo "${TOP_TIMELINE}" | grep -q "server/solve" || {
    echo "fleet smoke: p99 exemplar ${TOP_EXEMPLAR} did not stitch to a solve span"
    exit 1; }
kill ${TOP_AGENT_PID} ${TOP_SERVER1_PID} ${TOP_SERVER2_PID} 2>/dev/null || true
echo "fleet smoke passed: one scrape covered both servers, exemplar stitched"

echo "=== wire-path bench smoke (writer routes + decode routes) ==="
cargo build --release -p netsolve-bench --bin r1_wire_path
R1_SMOKE=$(./target/release/r1_wire_path --quick)
echo "${R1_SMOKE}"
# The bench asserts, per payload size, that the owned, borrowed and
# streamed decode routes return the original message and that streamed
# buffering stays bounded; this line only prints if every assert held.
echo "${R1_SMOKE}" | grep -q "decode routes agree" || {
    echo "wire smoke: decode-route agreement line missing"; exit 1; }

echo "=== trace-overhead bench smoke (tracing on vs off) ==="
cargo build --release -p netsolve-bench --bin r9_trace_overhead
./target/release/r9_trace_overhead --quick

echo "=== solve-cache bench smoke (cache on vs off) ==="
cargo build --release -p netsolve-bench --bin r10_cache
./target/release/r10_cache --quick

echo "=== admission bench smoke (sim vs live shed agreement, calendar scale) ==="
cargo build --release -p netsolve-bench --bin r11_admission
./target/release/r11_admission --quick

echo "=== fleet-telemetry bench smoke (sampler overhead + digest freshness) ==="
cargo build --release -p netsolve-bench --bin r12_fleet_obs
./target/release/r12_fleet_obs --quick

echo "=== clippy (deny warnings) ==="
cargo clippy --workspace --all-targets -- -D warnings

echo
echo "CI gate passed."
