//! # netsolve
//!
//! A comprehensive Rust reproduction of **NetSolve: A Network Server for
//! Solving Computational Science Problems** (Casanova & Dongarra,
//! Supercomputing '96): a client–agent–server system giving applications
//! network access to scientific solvers, with predictive load balancing
//! and client-side fault tolerance.
//!
//! This facade crate re-exports the full workspace:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`core`] | `netsolve-core` | data objects, problem model, errors, clocks |
//! | [`xdr`] | `netsolve-xdr` | hand-written XDR-style wire marshaling |
//! | [`pdl`] | `netsolve-pdl` | the problem description language + catalogue |
//! | [`solvers`] | `netsolve-solvers` | the numerical substrate (LAPACK-style) |
//! | [`proto`] | `netsolve-proto` | protocol messages and framing |
//! | [`net`] | `netsolve-net` | TCP + link-model transports |
//! | [`obs`] | `netsolve-obs` | metrics registry + request tracing |
//! | [`agent`] | `netsolve-agent` | the resource broker (the paper's core) |
//! | [`server`] | `netsolve-server` | the computational server |
//! | [`client`] | `netsolve-client` | `netsl` blocking / non-blocking calls |
//! | [`sim`] | `netsolve-sim` | the discrete-event evaluation harness |
//! | [`script`] | `netsolve-script` | the MATLAB-like interactive front end |
//!
//! ## Quickstart
//!
//! ```
//! use netsolve::testbed::InProcessDomain;
//! use netsolve::core::{DataObject, Matrix};
//!
//! // Bring up an agent plus two servers in this process.
//! let domain = InProcessDomain::start(&[("fast-host", 500.0), ("slow-host", 50.0)]).unwrap();
//! let client = domain.client();
//!
//! // Solve A x = b somewhere on the "network".
//! let a = Matrix::identity(4);
//! let b = vec![1.0, 2.0, 3.0, 4.0];
//! let x = client.netsl("dgesv", &[a.into(), b.clone().into()]).unwrap();
//! assert_eq!(x[0].as_vector().unwrap(), b.as_slice());
//! ```

#![warn(missing_docs)]

pub use netsolve_agent as agent;
pub use netsolve_client as client;
pub use netsolve_core as core;
pub use netsolve_net as net;
pub use netsolve_obs as obs;
pub use netsolve_pdl as pdl;
pub use netsolve_proto as proto;
pub use netsolve_script as script;
pub use netsolve_server as server;
pub use netsolve_sim as sim;
pub use netsolve_solvers as solvers;
pub use netsolve_xdr as xdr;

pub mod testbed {
    //! Convenience harness: a complete in-process NetSolve domain (one
    //! agent, N servers, shared channel network) for examples, tests and
    //! the live experiments.

    use std::sync::Arc;

    use netsolve_agent::{AgentCore, AgentDaemon, Policy};
    use netsolve_client::NetSolveClient;
    use netsolve_core::error::Result;
    use netsolve_net::{ChannelNetwork, LinkModel, NetworkView, Transport};
    use netsolve_server::{ExecutionMode, ServerConfig, ServerCore, ServerDaemon};

    /// A running in-process domain: agent + servers on a shared
    /// channel-transport network.
    pub struct InProcessDomain {
        network: ChannelNetwork,
        agent: Option<AgentDaemon>,
        servers: Vec<ServerDaemon>,
    }

    impl InProcessDomain {
        /// Start an agent (MCT policy) and one real-execution server per
        /// `(host_name, mflops)` entry. Server `i` listens at `"srv{i}"`.
        pub fn start(servers: &[(&str, f64)]) -> Result<Self> {
            Self::start_with(servers, LinkModel::ideal(), Policy::MinimumCompletionTime, ExecutionMode::Real)
        }

        /// Start with full control over link model, scheduling policy and
        /// execution mode.
        pub fn start_with(
            servers: &[(&str, f64)],
            link: LinkModel,
            policy: Policy,
            mode: ExecutionMode,
        ) -> Result<Self> {
            let network = ChannelNetwork::with_link(link, 0xD0_0D);
            let transport: Arc<dyn Transport> = Arc::new(network.clone());
            let core = AgentCore::new(Default::default(), policy, NetworkView::lan_defaults());
            let agent = AgentDaemon::start(Arc::clone(&transport), "agent", core)?;
            let mut daemons = Vec::with_capacity(servers.len());
            for (i, (host, mflops)) in servers.iter().enumerate() {
                let server_core = match mode {
                    ExecutionMode::Real => ServerCore::with_standard_catalogue(),
                    ExecutionMode::Synthetic { .. } => ServerCore::new(
                        netsolve_pdl::ProblemRegistry::with_standard_catalogue(),
                        ExecutionMode::Synthetic { mflops: *mflops },
                    ),
                };
                daemons.push(ServerDaemon::start(
                    Arc::clone(&transport),
                    "agent",
                    server_core,
                    ServerConfig::quick(host, &format!("srv{i}"), *mflops),
                )?);
            }
            Ok(InProcessDomain { network, agent: Some(agent), servers: daemons })
        }

        /// A new client bound to this domain's agent.
        pub fn client(&self) -> Arc<NetSolveClient> {
            Arc::new(NetSolveClient::new(Arc::new(self.network.clone()), "agent"))
        }

        /// The underlying channel network (for link tweaks / failure
        /// injection in experiments).
        pub fn network(&self) -> &ChannelNetwork {
            &self.network
        }

        /// Handle to the agent daemon.
        pub fn agent(&self) -> &AgentDaemon {
            self.agent.as_ref().expect("agent running")
        }

        /// The running server daemons.
        pub fn servers(&self) -> &[ServerDaemon] {
            &self.servers
        }

        /// Stop everything (also happens on drop).
        pub fn shutdown(&mut self) {
            for s in &mut self.servers {
                s.stop();
            }
            if let Some(mut agent) = self.agent.take() {
                agent.stop();
            }
        }
    }

    impl Drop for InProcessDomain {
        fn drop(&mut self) {
            self.shutdown();
        }
    }
}
