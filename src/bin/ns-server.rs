//! `ns-server` — run a NetSolve computational server over TCP.
//!
//! ```text
//! ns-server --agent HOST:PORT [--listen HOST:PORT] [--mflops N]
//!           [--host NAME] [--synthetic] [--cache-bytes N]
//!           [--admission] [--max-queue N] [--pdl FILE]...
//! ```
//!
//! Registers with the agent, then serves requests until killed.
//! `--synthetic` makes the server *emulate* a machine of the advertised
//! speed (sleep `complexity(n)/mflops`) instead of computing — useful for
//! standing up heterogeneous testbeds on one box. `--cache-bytes N`
//! enables the content-addressed solve cache (LRU under N bytes, with
//! in-flight coalescing of identical concurrent requests); hit/miss/
//! eviction counters appear in `netsl-stats` under `server.cache_*`.
//! `--admission` turns on the admission-control gate with default
//! watermarks; `--max-queue N` does the same but sheds at queue depth N
//! (hysteresis resumes at 3N/4). Shed requests get a retryable Busy with
//! a `retry_after_ms` hint; counters land under `server.admission_shed`
//! and `server.queue_deadline_shed`. `--pdl FILE` adds extra problem
//! descriptions (they must name problems the executor implements, or
//! requests for them will fail at execution time).

use std::sync::Arc;

use netsolve::net::{TcpTransport, Transport};
use netsolve::pdl::ProblemRegistry;
use netsolve::server::{ExecutionMode, ServerConfig, ServerCore, ServerDaemon};

fn usage() -> ! {
    eprintln!(
        "usage: ns-server --agent HOST:PORT [--listen HOST:PORT] [--mflops N]\n\
         \x20                 [--host NAME] [--synthetic] [--cache-bytes N]\n\
         \x20                 [--admission] [--max-queue N] [--pdl FILE]..."
    );
    std::process::exit(2);
}

fn main() {
    let mut agent: Option<String> = None;
    let mut listen = "127.0.0.1:0".to_string();
    let mut mflops = 100.0f64;
    let mut host = hostname_or("rust-server");
    let mut synthetic = false;
    let mut cache_bytes = 0usize;
    let mut admission: Option<netsolve::core::AdmissionConfig> = None;
    let mut pdl_files: Vec<String> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--agent" => agent = Some(args.next().unwrap_or_else(|| usage())),
            "--listen" => listen = args.next().unwrap_or_else(|| usage()),
            "--mflops" => {
                mflops = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--host" => host = args.next().unwrap_or_else(|| usage()),
            "--synthetic" => synthetic = true,
            "--cache-bytes" => {
                cache_bytes = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--admission" => {
                admission.get_or_insert_with(netsolve::core::AdmissionConfig::default);
            }
            "--max-queue" => {
                let depth = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
                admission = Some(netsolve::core::AdmissionConfig::with_max_queue(depth));
            }
            "--pdl" => pdl_files.push(args.next().unwrap_or_else(|| usage())),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag '{other}'");
                usage();
            }
        }
    }
    let Some(agent) = agent else { usage() };

    let mut registry = ProblemRegistry::with_standard_catalogue();
    for file in &pdl_files {
        let source = match std::fs::read_to_string(file) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("ns-server: cannot read {file}: {e}");
                std::process::exit(1);
            }
        };
        match registry.register_source(&source) {
            Ok(n) => println!("loaded {n} problems from {file}"),
            Err(e) => {
                eprintln!("ns-server: {file}: {e}");
                std::process::exit(1);
            }
        }
    }

    let mode = if synthetic {
        ExecutionMode::Synthetic { mflops }
    } else {
        ExecutionMode::Real
    };
    let mut core = ServerCore::new(registry, mode);
    if cache_bytes > 0 {
        core = core.with_cache(cache_bytes);
    }
    let transport: Arc<dyn Transport> = Arc::new(TcpTransport::new());
    let mut config = ServerConfig::quick(&host, &listen, mflops);
    config.admission = admission.clone();
    let daemon = match ServerDaemon::start(transport, &agent, core, config) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("ns-server: failed to start: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "ns-server '{host}' ({mflops} Mflop/s{}{}{}) listening on tcp://{} — registered as id {}",
        if synthetic { ", synthetic" } else { "" },
        if cache_bytes > 0 {
            format!(", cache {cache_bytes}B")
        } else {
            String::new()
        },
        match &admission {
            Some(cfg) => format!(", admission max-queue {}", cfg.max_queue_depth),
            None => String::new(),
        },
        daemon.address(),
        daemon.server_id()
    );
    println!("(ctrl-c to stop)");
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3600));
    }
}

fn hostname_or(default: &str) -> String {
    std::env::var("HOSTNAME").unwrap_or_else(|_| default.to_string())
}
