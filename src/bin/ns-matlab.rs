//! `ns-matlab` — run MATLAB-like scripts against a NetSolve domain.
//!
//! ```text
//! ns-matlab --agent HOST:PORT [SCRIPT.m]    # file, or stdin when omitted
//! ns-matlab [SCRIPT.m]                      # local-only (no netsolve())
//! ```

use std::io::Read;
use std::sync::Arc;

use netsolve::client::NetSolveClient;
use netsolve::net::{TcpTransport, Transport};
use netsolve::script::Interpreter;

fn usage() -> ! {
    eprintln!("usage: ns-matlab [--agent HOST:PORT] [SCRIPT.m]");
    std::process::exit(2);
}

fn main() {
    let mut agent: Option<String> = None;
    let mut script_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--agent" => agent = Some(args.next().unwrap_or_else(|| usage())),
            "--help" | "-h" => usage(),
            other => {
                if script_path.is_some() {
                    usage();
                }
                script_path = Some(other.to_string());
            }
        }
    }

    let source = match &script_path {
        Some(path) => match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("ns-matlab: cannot read {path}: {e}");
                std::process::exit(1);
            }
        },
        None => {
            let mut s = String::new();
            if std::io::stdin().read_to_string(&mut s).is_err() {
                eprintln!("ns-matlab: failed to read stdin");
                std::process::exit(1);
            }
            s
        }
    };

    let mut interp = match agent {
        Some(addr) => {
            let transport: Arc<dyn Transport> = Arc::new(TcpTransport::new());
            Interpreter::with_client(Arc::new(NetSolveClient::new(transport, &addr)))
        }
        None => Interpreter::new(),
    };

    match interp.run(&source) {
        Ok(_) => {
            for line in &interp.output {
                println!("{line}");
            }
        }
        Err(e) => {
            for line in &interp.output {
                println!("{line}");
            }
            eprintln!("ns-matlab: {e}");
            std::process::exit(1);
        }
    }
}
