//! `ns-agent` — run a NetSolve agent over TCP.
//!
//! ```text
//! ns-agent [--listen HOST:PORT] [--policy MCT|rr|random|load-only|fastest-cpu|nearest-net]
//!          [--peer HOST:PORT]... [--gossip-interval SECS]
//! ```
//!
//! Prints the bound address, then serves until killed. `--peer` enables
//! federation: peered agents gossip their server registries to each
//! other (every `--gossip-interval` seconds, default 10) and queries
//! this agent cannot satisfy are widened to the peers.

use std::sync::Arc;

use netsolve::agent::{AgentCore, AgentDaemon, Policy};
use netsolve::core::config::AgentConfig;
use netsolve::net::{NetworkView, TcpTransport, Transport};

fn usage() -> ! {
    eprintln!(
        "usage: ns-agent [--listen HOST:PORT] [--policy NAME] [--peer HOST:PORT]...\n\
         \x20               [--gossip-interval SECS]\n\
         policies: MCT (default), rr, random, load-only, fastest-cpu, nearest-net"
    );
    std::process::exit(2);
}

fn main() {
    let mut listen = "127.0.0.1:9000".to_string();
    let mut policy = Policy::MinimumCompletionTime;
    let mut peers: Vec<String> = Vec::new();
    let mut config = AgentConfig::default();

    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--listen" => listen = args.next().unwrap_or_else(|| usage()),
            "--policy" => {
                let name = args.next().unwrap_or_else(|| usage());
                policy = name.parse().unwrap_or_else(|e| {
                    eprintln!("{e}");
                    usage()
                });
            }
            "--peer" => peers.push(args.next().unwrap_or_else(|| usage())),
            "--gossip-interval" => {
                let secs: f64 = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|s| *s > 0.0)
                    .unwrap_or_else(|| usage());
                config.gossip.interval_secs = secs;
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag '{other}'");
                usage();
            }
        }
    }

    let transport: Arc<dyn Transport> = Arc::new(TcpTransport::new());
    let core = AgentCore::new(config, policy, NetworkView::lan_defaults());
    let daemon = match if peers.is_empty() {
        AgentDaemon::start(transport, &listen, core)
    } else {
        AgentDaemon::start_federated(transport, &listen, core, peers.clone())
    } {
        Ok(d) => d,
        Err(e) => {
            eprintln!("ns-agent: failed to start: {e}");
            std::process::exit(1);
        }
    };
    println!("ns-agent listening on tcp://{}", daemon.address());
    println!("policy: {}", policy.name());
    if !peers.is_empty() {
        println!("federated with: {}", peers.join(", "));
    }
    println!("(ctrl-c to stop)");
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3600));
    }
}
