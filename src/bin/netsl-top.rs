//! `netsl-top` — live fleet view from a single agent scrape.
//!
//! ```text
//! netsl-top [--watch SECS] AGENT_HOST:PORT
//! ```
//!
//! Sends one `FleetStatsQuery` to the named agent. Because agents gossip
//! their stats digests alongside registry entries, that one reply carries
//! a windowed digest for every live daemon in the federation — the local
//! agent, its peers, and every server any of them tracks. The table
//! shows, per server: queue depth, solve/shed rates, cache hit rate and
//! the p99 solve latency with its exemplar trace id (feed that hex id to
//! `netsl-trace --trace` to see exactly what made the tail fire). Per
//! agent: peers up and digest freshness (gossip lag).
//!
//! Default is one shot (scriptable, used by CI); `--watch SECS` clears
//! the screen and refreshes every interval.

use std::sync::Arc;
use std::time::Duration;

use netsolve::net::{call, TcpTransport, Transport};
use netsolve::obs::StatsDigest;
use netsolve::proto::Message;

fn usage() -> ! {
    eprintln!(
        "usage: netsl-top [--watch SECS] AGENT_HOST:PORT\n\
         \n\
         Scrapes one agent with FleetStatsQuery and renders the whole\n\
         federation's recent rates, queue depths and tail latencies.\n\
         One-shot by default; --watch refreshes every SECS seconds."
    );
    std::process::exit(2);
}

fn main() {
    let mut args = std::env::args().skip(1);
    let mut watch_secs: Option<f64> = None;
    let mut address: Option<String> = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--help" | "-h" => usage(),
            "--watch" => match args.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(secs) if secs > 0.0 => watch_secs = Some(secs),
                _ => usage(),
            },
            _ if address.is_none() => address = Some(arg),
            _ => usage(),
        }
    }
    let Some(address) = address else { usage() };

    let transport: Arc<dyn Transport> = Arc::new(TcpTransport::new());
    match watch_secs {
        None => match scrape(&transport, &address) {
            Ok(digests) => render(&address, &digests),
            Err(e) => {
                eprintln!("netsl-top: {address}: {e}");
                std::process::exit(1);
            }
        },
        Some(interval) => loop {
            // ANSI clear + home, like top(1); harmless when redirected.
            print!("\x1b[2J\x1b[H");
            match scrape(&transport, &address) {
                Ok(digests) => render(&address, &digests),
                Err(e) => eprintln!("netsl-top: {address}: {e}"),
            }
            std::thread::sleep(Duration::from_secs_f64(interval));
        },
    }
}

/// One `FleetStatsQuery` round-trip. A pre-v6 agent answers with its
/// generic `Error` reply; surface that as a protocol error so the exit
/// code says "this agent cannot do fleet stats" rather than hanging.
fn scrape(
    transport: &Arc<dyn Transport>,
    address: &str,
) -> netsolve::core::Result<Vec<StatsDigest>> {
    let mut conn = transport.connect(address)?;
    let reply = call(conn.as_mut(), &Message::FleetStatsQuery, Duration::from_secs(5))?;
    match reply {
        Message::FleetStatsReply { digests } => Ok(digests),
        Message::Error { code, detail } => Err(netsolve::core::NetSolveError::Protocol(format!(
            "fleet stats unsupported by this agent ({code:?}: {detail})"
        ))),
        other => Err(netsolve::core::NetSolveError::Protocol(format!(
            "unexpected reply {}",
            other.name()
        ))),
    }
}

fn render(scraped: &str, digests: &[StatsDigest]) {
    println!(
        "netsl-top — fleet view via {scraped} ({} daemon{})",
        digests.len(),
        if digests.len() == 1 { "" } else { "s" }
    );
    let servers: Vec<&StatsDigest> = digests.iter().filter(|d| d.component == "server").collect();
    let agents: Vec<&StatsDigest> = digests.iter().filter(|d| d.component == "agent").collect();

    if !servers.is_empty() {
        println!();
        println!(
            "{:<22} {:>6} {:>9} {:>9} {:>7} {:>11}  P99 EXEMPLAR",
            "SERVER", "QDEPTH", "SOLVE/S", "SHED/S", "CACHE%", "P99(s)"
        );
        for d in &servers {
            let qdepth = d.gauge("server.active_requests");
            let solve_rate = d.rate("server.requests");
            let shed_rate = d.rate("server.admission_shed")
                + d.rate("server.queue_deadline_shed")
                + d.rate("server.deadline_shed");
            let hits = d.rate("server.cache_hits");
            let misses = d.rate("server.cache_misses");
            let cache = if hits + misses > 0.0 {
                format!("{:.1}", 100.0 * hits / (hits + misses))
            } else {
                "-".into()
            };
            let (p99, exemplar) = match d.quantiles("server.compute_secs") {
                Some(q) if q.count > 0 => {
                    (format!("{:.6}", q.p99_secs), format_exemplar(q.p99_exemplar))
                }
                _ => ("-".into(), "-".into()),
            };
            println!(
                "{:<22} {:>6} {:>9.2} {:>9.2} {:>7} {:>11}  {}",
                d.origin, qdepth, solve_rate, shed_rate, cache, p99, exemplar
            );
        }
    }

    if !agents.is_empty() {
        println!();
        println!(
            "{:<22} {:>8} {:>10} {:>10} {:>11}",
            "AGENT", "PEERS_UP", "GOSSIP/S", "MERGES/S", "LAG(s)"
        );
        for d in &agents {
            println!(
                "{:<22} {:>8} {:>10.2} {:>10.2} {:>11.2}",
                d.origin,
                d.gauge("agent.peers_up"),
                d.rate("agent.gossip_rounds"),
                d.rate("agent.digest_merges"),
                d.age_secs
            );
        }
    }

    if servers.is_empty() && agents.is_empty() {
        println!("  (no digests yet — daemons sample once per telemetry tick)");
    }
}

/// Trace ids print as 32 hex digits, the format `netsl-trace` accepts.
fn format_exemplar(id: u128) -> String {
    if id == 0 {
        "-".into()
    } else {
        format!("{id:032x}")
    }
}
