//! `netsl-stats` — scrape live NetSolve daemons for their metrics.
//!
//! ```text
//! netsl-stats [--watch SECS] HOST:PORT [HOST:PORT ...]
//! ```
//!
//! Dials each address over TCP, sends a `StatsQuery`, and pretty-prints
//! the `StatsReply`. Daemons from before the stats protocol answer with
//! their generic "cannot handle" error; those are reported as
//! *unsupported* rather than failures, so a mixed-version domain can
//! still be scraped.
//!
//! With `--watch SECS` it rescrapes every `SECS` seconds and prints
//! counter *rates* (events/sec over the last interval) plus windowed
//! latency quantiles, by feeding each scrape into the same
//! [`WindowedSeries`] ring the daemons use for their own fleet digests.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

use netsolve::net::{call, TcpTransport, Transport};
use netsolve::obs::metrics::bucket_bound_secs;
use netsolve::obs::{unix_now_secs, SeriesConfig, StatsSnapshot, WindowedSeries};
use netsolve::proto::Message;

fn usage() -> ! {
    eprintln!(
        "usage: netsl-stats [--watch SECS] HOST:PORT [HOST:PORT ...]\n\
         \n\
         Sends a StatsQuery to each daemon (agent, server or any future\n\
         component) and prints its counters, gauges and latency histograms.\n\
         With --watch, rescrapes every SECS seconds and prints rates\n\
         (deltas per second) instead of raw totals."
    );
    std::process::exit(2);
}

fn main() {
    let mut args = std::env::args().skip(1).peekable();
    let mut watch_secs: Option<f64> = None;
    let mut addresses: Vec<String> = Vec::new();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--help" | "-h" => usage(),
            "--watch" => match args.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(secs) if secs > 0.0 => watch_secs = Some(secs),
                _ => usage(),
            },
            _ => addresses.push(arg),
        }
    }
    if addresses.is_empty() {
        usage();
    }

    let transport: Arc<dyn Transport> = Arc::new(TcpTransport::new());
    if let Some(interval) = watch_secs {
        watch(&transport, &addresses, interval);
    }
    let mut failures = 0usize;
    for address in &addresses {
        match scrape(&transport, address) {
            Ok(Some(snapshot)) => print_snapshot(address, &snapshot),
            Ok(None) => println!("{address}: stats unsupported by this daemon"),
            Err(e) => {
                eprintln!("netsl-stats: {address}: {e}");
                failures += 1;
            }
        }
    }
    if failures > 0 {
        std::process::exit(1);
    }
}

/// `--watch` loop: scrape every `interval` seconds forever, feeding each
/// snapshot into a per-address [`WindowedSeries`] and printing the rates
/// the freshest delta implies. Never returns; ^C is the exit.
fn watch(transport: &Arc<dyn Transport>, addresses: &[String], interval: f64) -> ! {
    let mut series: HashMap<String, WindowedSeries> = HashMap::new();
    loop {
        for address in addresses {
            match scrape(transport, address) {
                Ok(Some(snapshot)) => {
                    let s = series.entry(address.clone()).or_insert_with(|| {
                        WindowedSeries::new(SeriesConfig { tick_secs: interval, slots: 300 })
                    });
                    s.record(snapshot, unix_now_secs());
                    if s.is_empty() {
                        // First scrape only seeds the delta baseline.
                        println!("{address}: baseline taken, rates next interval");
                    } else {
                        print_rates(address, s, interval);
                    }
                }
                Ok(None) => println!("{address}: stats unsupported by this daemon"),
                Err(e) => eprintln!("netsl-stats: {address}: {e}"),
            }
        }
        println!();
        std::thread::sleep(Duration::from_secs_f64(interval));
    }
}

/// One interval's view of a daemon: counter rates over the freshest
/// delta, gauge levels, and latency quantiles over the whole retained
/// window (so the percentiles have enough mass to mean something even
/// at short intervals).
fn print_rates(address: &str, series: &WindowedSeries, interval: f64) {
    let slots = series.slots();
    let Some(last) = slots.last() else { return };
    println!("{address} (last {interval:.1}s)");
    for (name, delta) in &last.counters {
        let rate = *delta as f64 / last.elapsed_secs.max(1e-9);
        if rate != 0.0 {
            println!("  {name:<32} {rate:>10.2}/s");
        }
    }
    for (name, value) in &last.gauges {
        println!("  {name:<32} {value:>10}");
    }
    let window = series.config().tick_secs * series.config().slots as f64;
    for slot_hist in &last.histograms {
        let name = &slot_hist.name;
        let Some(h) = series.windowed_histogram(name, window) else { continue };
        if h.count == 0 {
            continue;
        }
        println!(
            "  {:<32} n={}  p50 {:.6}s  p95 {:.6}s  p99 {:.6}s",
            name,
            h.count,
            h.quantile_secs(0.50),
            h.quantile_secs(0.95),
            h.quantile_secs(0.99)
        );
    }
}

/// One scrape. `Ok(None)` means the peer predates `StatsQuery`.
fn scrape(
    transport: &Arc<dyn Transport>,
    address: &str,
) -> netsolve::core::Result<Option<StatsSnapshot>> {
    let mut conn = transport.connect(address)?;
    let reply = call(conn.as_mut(), &Message::StatsQuery, Duration::from_secs(5))?;
    match reply {
        Message::StatsReply(snapshot) => Ok(Some(snapshot)),
        Message::Error { .. } => Ok(None),
        other => Err(netsolve::core::NetSolveError::Protocol(format!(
            "unexpected reply {}",
            other.name()
        ))),
    }
}

/// Counters that make up the federation story; pulled out of the generic
/// listing into their own block so a multi-agent domain's health (gossip
/// flow, peer liveness, client failovers) reads at a glance.
const FEDERATION_COUNTERS: &[&str] = &[
    "agent.gossip_rounds",
    "agent.gossip_sends",
    "agent.gossip_send_failures",
    "agent.gossip_syncs_received",
    "agent.gossip_merges",
    "agent.gossip_merge_conflicts",
    "agent.gossip_expired",
    "agent.gossip_peer_unsupported",
    "agent.peer_down_marks",
    "agent.peer_recoveries",
    "client.agent_failovers",
];
const FEDERATION_GAUGES: &[&str] = &["agent.peers_up"];

/// Counters that make up the solve-cache story, grouped the same way so
/// a cache-enabled server's hit rate and CRC health read at a glance.
const CACHE_COUNTERS: &[&str] = &[
    "server.cache_hits",
    "server.cache_misses",
    "server.cache_coalesced",
    "server.cache_inserts",
    "server.cache_evictions",
    "server.cache_insert_crcs",
    "server.cache_serve_crcs",
    "server.cache_corrupt_dropped",
    "server.cache_uncacheable",
    "client.cached_replies",
];
const CACHE_GAUGES: &[&str] = &["server.cache_bytes", "server.cache_entries"];

fn print_snapshot(address: &str, s: &StatsSnapshot) {
    println!("{address} [{}]", s.component);
    for (name, value) in &s.counters {
        if FEDERATION_COUNTERS.contains(&name.as_str()) || CACHE_COUNTERS.contains(&name.as_str())
        {
            continue;
        }
        println!("  {name:<32} {value}");
    }
    for (name, value) in &s.gauges {
        if FEDERATION_GAUGES.contains(&name.as_str()) || CACHE_GAUGES.contains(&name.as_str()) {
            continue;
        }
        println!("  {name:<32} {value}");
    }
    let cache_counters: Vec<_> = s
        .counters
        .iter()
        .filter(|(n, _)| CACHE_COUNTERS.contains(&n.as_str()))
        .collect();
    let cache_gauges: Vec<_> =
        s.gauges.iter().filter(|(n, _)| CACHE_GAUGES.contains(&n.as_str())).collect();
    if !cache_counters.is_empty() || !cache_gauges.is_empty() {
        println!("  cache");
        let hits = s.counter("server.cache_hits");
        let misses = s.counter("server.cache_misses");
        if hits + misses > 0 {
            println!(
                "    {:<30} {:.1}%",
                "hit_rate",
                100.0 * hits as f64 / (hits + misses) as f64
            );
        }
        for (name, value) in cache_counters {
            println!("    {name:<30} {value}");
        }
        for (name, value) in cache_gauges {
            println!("    {name:<30} {value}");
        }
    }
    let fed_counters: Vec<_> = s
        .counters
        .iter()
        .filter(|(n, _)| FEDERATION_COUNTERS.contains(&n.as_str()))
        .collect();
    let fed_gauges: Vec<_> = s
        .gauges
        .iter()
        .filter(|(n, _)| FEDERATION_GAUGES.contains(&n.as_str()))
        .collect();
    if !fed_counters.is_empty() || !fed_gauges.is_empty() {
        println!("  federation");
        for (name, value) in fed_counters {
            println!("    {name:<30} {value}");
        }
        for (name, value) in fed_gauges {
            println!("    {name:<30} {value}");
        }
    }
    for h in &s.histograms {
        println!(
            "  {:<32} count {}  mean {:.6}s  sum {:.6}s",
            h.name,
            h.count,
            h.mean_secs(),
            h.sum_secs
        );
        if h.count > 0 {
            // Log-bucketed, so each quantile is exact to within one 2x
            // bucket — plenty for spotting tail blowups.
            println!(
                "    p50 {:.6}s  p95 {:.6}s  p99 {:.6}s",
                h.quantile_secs(0.50),
                h.quantile_secs(0.95),
                h.quantile_secs(0.99)
            );
        }
        for (i, n) in h.buckets.iter().enumerate() {
            if *n == 0 {
                continue;
            }
            println!("    <= {:>12.6}s  {n}", bucket_bound_secs(i));
        }
    }
}
