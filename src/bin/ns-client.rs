//! `ns-client` — command-line NetSolve client.
//!
//! ```text
//! ns-client --agent HOST:PORT list
//! ns-client --agent HOST:PORT describe PROBLEM
//! ns-client --agent HOST:PORT demo PROBLEM [N]      # generated inputs
//! ns-client --agent HOST:PORT quad FNAME A B TOL
//! ```
//!
//! `--agent` may be repeated: the client ranks the agents by ping
//! round-trip and fails over to the next one when the current agent
//! refuses, times out, or resets mid-request.
//!
//! `demo` generates a random well-posed instance of size `N` (default 100)
//! for the classic problems and prints where it ran and how long it took.
//!
//! With `--trace-dump PATH`, the client's own phase spans are written to
//! `PATH` (one span per line) on exit; feed that file to `netsl-trace`
//! via `--dump` to stitch the client side into the request timeline.

use std::sync::Arc;

use netsolve::client::NetSolveClient;
use netsolve::core::units::fmt_secs;
use netsolve::core::{DataObject, Matrix, Rng64};
use netsolve::net::{TcpTransport, Transport};

fn usage() -> ! {
    eprintln!(
        "usage: ns-client --agent HOST:PORT [--agent HOST:PORT ...] COMMAND\n\
         commands:\n\
         \x20 list\n\
         \x20 servers\n\
         \x20 describe PROBLEM\n\
         \x20 demo PROBLEM [N]   (dgesv dposv dgels dgetri dgemm fft vsort dnrm2 cg)\n\
         \x20 quad FNAME A B TOL\n\
         options:\n\
         \x20 --agent HOST:PORT  repeatable; extra agents are failover targets\n\
         \x20 --trace-dump PATH  write the client's phase spans to PATH"
    );
    std::process::exit(2);
}

fn main() {
    let mut agents: Vec<String> = Vec::new();
    let mut trace_dump: Option<String> = None;
    let mut rest: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--agent" => agents.push(args.next().unwrap_or_else(|| usage())),
            "--trace-dump" => trace_dump = Some(args.next().unwrap_or_else(|| usage())),
            "--help" | "-h" => usage(),
            _ => rest.push(a),
        }
    }
    if agents.is_empty() || rest.is_empty() {
        usage();
    }

    let transport: Arc<dyn Transport> = Arc::new(TcpTransport::new());
    let client = NetSolveClient::new_multi(transport, &agents);

    let outcome = match rest[0].as_str() {
        "list" => list(&client),
        "servers" => servers(&client),
        "describe" if rest.len() == 2 => describe(&client, &rest[1]),
        "demo" if rest.len() >= 2 => {
            let n = rest
                .get(2)
                .map(|v| v.parse().unwrap_or_else(|_| usage()))
                .unwrap_or(100usize);
            demo(&client, &rest[1], n)
        }
        "quad" if rest.len() == 5 => {
            let a: f64 = rest[2].parse().unwrap_or_else(|_| usage());
            let b: f64 = rest[3].parse().unwrap_or_else(|_| usage());
            let tol: f64 = rest[4].parse().unwrap_or_else(|_| usage());
            run_quad(&client, &rest[1], a, b, tol)
        }
        _ => usage(),
    };
    if let Some(path) = trace_dump {
        let lines: String = client
            .tracer()
            .snapshot_trace(0)
            .iter()
            .map(|r| r.to_line() + "\n")
            .collect();
        if let Err(e) = std::fs::write(&path, lines) {
            eprintln!("ns-client: writing trace dump {path}: {e}");
        }
    }
    if let Err(e) = outcome {
        eprintln!("ns-client: {e}");
        std::process::exit(1);
    }
}

fn list(client: &NetSolveClient) -> netsolve::core::Result<()> {
    for name in client.list_problems()? {
        let spec = client.describe(&name)?;
        println!("{name:<12} {}", spec.description);
    }
    Ok(())
}

fn servers(client: &NetSolveClient) -> netsolve::core::Result<()> {
    for s in client.list_servers()? {
        println!(
            "{:<4} {:<16} {:<22} {:>8.1} Mflop/s  workload {:>6.1}  {}  ({} problems)",
            s.server_id,
            s.host,
            s.address,
            s.mflops,
            s.workload,
            if s.down { "DOWN" } else { "up  " },
            s.problems
        );
    }
    Ok(())
}

fn describe(client: &NetSolveClient, problem: &str) -> netsolve::core::Result<()> {
    let spec = client.describe(problem)?;
    println!("{}", netsolve::pdl::render(&spec));
    Ok(())
}

fn demo(client: &NetSolveClient, problem: &str, n: usize) -> netsolve::core::Result<()> {
    let mut rng = Rng64::new(0xC11);
    let inputs: Vec<DataObject> = match problem {
        "dgesv" | "dgels" => vec![
            Matrix::random_diag_dominant(n, &mut rng).into(),
            (0..n).map(|i| (i as f64).sin()).collect::<Vec<f64>>().into(),
        ],
        "dposv" => vec![
            Matrix::random_spd(n, &mut rng).into(),
            vec![1.0; n].into(),
        ],
        "dgetri" => vec![Matrix::random_diag_dominant(n, &mut rng).into()],
        "dgemm" => vec![
            Matrix::random(n, n, &mut rng).into(),
            Matrix::random(n, n, &mut rng).into(),
        ],
        "fft" => {
            let len = n.next_power_of_two();
            vec![
                (0..len).map(|i| (i as f64 * 0.1).cos()).collect::<Vec<f64>>().into(),
                vec![0.0; len].into(),
            ]
        }
        "vsort" => vec![(0..n).map(|_| rng.uniform(-1e3, 1e3)).collect::<Vec<f64>>().into()],
        "dnrm2" => vec![(0..n).map(|_| rng.uniform(-1.0, 1.0)).collect::<Vec<f64>>().into()],
        "cg" => {
            let grid = (n as f64).sqrt().ceil() as usize;
            let lap = netsolve::core::CsrMatrix::laplacian_2d(grid, grid);
            let dim = lap.rows();
            vec![
                lap.into(),
                vec![1.0; dim].into(),
                DataObject::Double(1e-8),
                DataObject::Int(10_000),
            ]
        }
        other => {
            eprintln!("no demo generator for '{other}'");
            std::process::exit(2);
        }
    };
    let (outputs, report) = client.netsl_timed(problem, &inputs)?;
    println!("{problem} (n={n}) solved on {}", report.server_address);
    println!("  predicted {}", fmt_secs(report.predicted_secs));
    println!("  total     {}", fmt_secs(report.total_secs));
    println!("  compute   {}", fmt_secs(report.compute_secs));
    println!("  attempts  {}", report.attempts);
    println!("  outputs   {}", outputs.len());
    println!("  trace     {:032x}", report.trace_id);
    Ok(())
}

fn run_quad(
    client: &NetSolveClient,
    fname: &str,
    a: f64,
    b: f64,
    tol: f64,
) -> netsolve::core::Result<()> {
    let (out, report) = client.netsl_timed(
        "quad",
        &[
            fname.into(),
            DataObject::Double(a),
            DataObject::Double(b),
            DataObject::Double(tol),
        ],
    )?;
    println!(
        "∫ {fname} over [{a}, {b}] = {} ({} evals, {} on {})",
        out[0].as_double()?,
        out[1].as_int()?,
        fmt_secs(report.total_secs),
        report.server_address
    );
    Ok(())
}
