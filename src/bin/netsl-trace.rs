//! `netsl-trace` — pull spans from live NetSolve daemons and stitch the
//! distributed timeline of a request.
//!
//! ```text
//! netsl-trace [--trace HEX_ID] [--dump PATH ...] [HOST:PORT ...]
//! ```
//!
//! Dials each address over TCP with a `TraceQuery` (agents and servers
//! answer with their retained spans), reads any `--dump` files written by
//! `ns-client --trace-dump`, groups everything by trace id, and prints
//! each trace as a causally-ordered tree with a critical-path phase
//! breakdown ("82% server/solve, 11% server/queue, ...").
//!
//! `--trace` limits the pull to one trace id (the hex value `ns-client`
//! prints as `trace ...`); without it every retained trace is shown.
//! Daemons from before the trace protocol answer with their generic
//! "cannot handle" error; those are reported as *unsupported* rather than
//! failures, so a mixed-version domain can still be scraped.

use std::sync::Arc;
use std::time::Duration;

use netsolve::net::{call, TcpTransport, Transport};
use netsolve::obs::{render, stitch, SpanRecord};
use netsolve::proto::Message;

fn usage() -> ! {
    eprintln!(
        "usage: netsl-trace [--trace HEX_ID] [--dump PATH ...] [HOST:PORT ...]\n\
         \n\
         Pulls retained spans from each daemon (TraceQuery), merges them\n\
         with any --dump files written by `ns-client --trace-dump`, and\n\
         prints stitched per-trace timelines with a phase breakdown."
    );
    std::process::exit(2);
}

fn parse_trace_id(s: &str) -> Option<u128> {
    let hex = s.strip_prefix("0x").unwrap_or(s);
    u128::from_str_radix(hex, 16).ok()
}

fn main() {
    let mut trace_id = 0u128; // 0 = every retained trace
    let mut dumps: Vec<String> = Vec::new();
    let mut addresses: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--trace" => {
                let raw = args.next().unwrap_or_else(|| usage());
                trace_id = parse_trace_id(&raw).unwrap_or_else(|| {
                    eprintln!("netsl-trace: bad trace id '{raw}' (expected hex)");
                    std::process::exit(2);
                });
            }
            "--dump" => dumps.push(args.next().unwrap_or_else(|| usage())),
            "--help" | "-h" => usage(),
            _ => addresses.push(a),
        }
    }
    if dumps.is_empty() && addresses.is_empty() {
        usage();
    }

    let transport: Arc<dyn Transport> = Arc::new(TcpTransport::new());
    let mut records: Vec<SpanRecord> = Vec::new();
    let mut failures = 0usize;

    for path in &dumps {
        match std::fs::read_to_string(path) {
            Ok(text) => {
                let before = records.len();
                records.extend(text.lines().filter_map(SpanRecord::from_line));
                eprintln!("{path}: {} span(s)", records.len() - before);
            }
            Err(e) => {
                eprintln!("netsl-trace: {path}: {e}");
                failures += 1;
            }
        }
    }

    for address in &addresses {
        match pull(&transport, address, trace_id) {
            Ok(Some((component, spans))) => {
                eprintln!("{address} [{component}]: {} span(s)", spans.len());
                records.extend(spans);
            }
            Ok(None) => eprintln!("{address}: tracing unsupported by this daemon"),
            Err(e) => {
                eprintln!("netsl-trace: {address}: {e}");
                failures += 1;
            }
        }
    }

    if trace_id != 0 {
        records.retain(|r| r.trace_id == trace_id);
    }
    let timelines = stitch(&records);
    if timelines.is_empty() {
        println!("no spans found");
    }
    for t in &timelines {
        println!("{}", render(t));
    }
    if failures > 0 {
        std::process::exit(1);
    }
}

/// One pull. `Ok(None)` means the peer predates `TraceQuery`.
fn pull(
    transport: &Arc<dyn Transport>,
    address: &str,
    trace_id: u128,
) -> netsolve::core::Result<Option<(String, Vec<SpanRecord>)>> {
    let mut conn = transport.connect(address)?;
    let reply = call(
        conn.as_mut(),
        &Message::TraceQuery { trace_id },
        Duration::from_secs(5),
    )?;
    match reply {
        Message::TraceReply { component, spans } => Ok(Some((component, spans))),
        Message::Error { .. } => Ok(None),
        other => Err(netsolve::core::NetSolveError::Protocol(format!(
            "unexpected reply {}",
            other.name()
        ))),
    }
}
