//! Integration tests of the evaluation harness: the qualitative *shapes*
//! the paper's results rest on must hold in the simulator (these are the
//! same properties EXPERIMENTS.md reports quantitatively).

use netsolve::agent::Policy;
use netsolve::sim::{run, run_policies, Arrivals, RequestMix, Scenario, SimServer};

fn heterogeneous_pool() -> Vec<SimServer> {
    vec![
        SimServer::new(400.0),
        SimServer::new(200.0),
        SimServer::new(100.0),
        SimServer::new(50.0),
        SimServer::new(25.0),
    ]
}

/// R2 shape: MCT beats every naive baseline on mean turnaround over a
/// heterogeneous pool under load.
#[test]
fn mct_dominates_baselines_on_heterogeneous_pool() {
    let mut sc = Scenario::default_with(heterogeneous_pool(), 300);
    sc.arrivals = Arrivals::Poisson { rate: 3.0 };
    sc.mix = RequestMix::dgesv(&[200, 300, 400]);
    sc.seed = 99;

    let reports = run_policies(
        &sc,
        &[
            Policy::MinimumCompletionTime,
            Policy::RoundRobin,
            Policy::Random,
            Policy::FastestCpu,
        ],
    )
    .unwrap();
    let mct = reports[0].mean_turnaround_secs();
    for r in &reports[1..] {
        assert!(
            mct <= r.mean_turnaround_secs() * 1.05,
            "MCT {:.3}s should not lose to {} {:.3}s",
            mct,
            r.policy().name(),
            r.mean_turnaround_secs()
        );
    }
    // And it must beat the worst baseline clearly, not just tie everything.
    let worst = reports[1..]
        .iter()
        .map(|r| r.mean_turnaround_secs())
        .fold(0.0f64, f64::max);
    assert!(mct < worst * 0.8, "MCT {mct} vs worst baseline {worst}");
}

/// R2 shape: under MCT, faster servers complete more requests.
#[test]
fn work_distribution_follows_speed() {
    let mut sc = Scenario::default_with(heterogeneous_pool(), 400);
    sc.arrivals = Arrivals::Poisson { rate: 4.0 };
    sc.seed = 7;
    let report = run(&sc).unwrap();
    let counts = report.per_server_counts();
    // Monotone non-increasing with speed, with real separation between
    // the fastest and slowest.
    assert!(counts[0] > counts[4], "fastest {} vs slowest {}", counts[0], counts[4]);
    assert!(counts[0] >= counts[1] && counts[1] >= counts[3].min(counts[2]));
}

/// R4 shape: staler workload information degrades scheduling quality.
#[test]
fn stale_workload_info_hurts() {
    let mut base = Scenario::default_with(
        vec![SimServer::new(100.0), SimServer::new(100.0), SimServer::new(100.0)],
        250,
    );
    base.arrivals = Arrivals::Poisson { rate: 2.5 };
    base.seed = 31;

    let mut fresh = base.clone();
    fresh.workload.report_interval_secs = 1.0;
    fresh.workload.ttl_secs = 10.0;

    let mut stale = base.clone();
    stale.workload.report_interval_secs = 300.0; // effectively never
    stale.workload.ttl_secs = 3000.0;

    let fresh_report = run(&fresh).unwrap();
    let stale_report = run(&stale).unwrap();
    assert!(
        fresh_report.mean_turnaround_secs() <= stale_report.mean_turnaround_secs() * 1.10,
        "fresh {:.3} vs stale {:.3}",
        fresh_report.mean_turnaround_secs(),
        stale_report.mean_turnaround_secs()
    );
}

/// R5 shape: failover rescues almost everything; disabling it loses
/// requests roughly in proportion to the failure rate.
#[test]
fn failover_rescues_requests() {
    let servers = vec![
        SimServer::new(100.0).with_fail_prob(0.25),
        SimServer::new(100.0).with_fail_prob(0.25),
        SimServer::new(100.0),
    ];
    let mut with_failover = Scenario::default_with(servers.clone(), 200);
    with_failover.max_attempts = 3;
    with_failover.seed = 17;
    let mut without = with_failover.clone();
    without.max_attempts = 1;

    let a = run(&with_failover).unwrap();
    let b = run(&without).unwrap();
    assert!(a.success_rate() > 0.98, "failover success {}", a.success_rate());
    assert!(b.success_rate() < a.success_rate(), "failover must help");
}

/// R7 shape: as the bandwidth to the fast-but-far server degrades, MCT
/// shifts transfer-heavy work to the slow-but-near server.
#[test]
fn bandwidth_crossover_shifts_placement() {
    let servers = vec![SimServer::new(1000.0), SimServer::new(100.0)];
    let mk = |fast_bw: f64| {
        let mut sc = Scenario::default_with(servers.clone(), 120)
            .server_link_override(0, 1e-3, fast_bw)
            .server_link_override(1, 1e-4, 100e6);
        sc.arrivals = Arrivals::Poisson { rate: 0.5 }; // light load: pure placement
        sc.mix = RequestMix::dgesv(&[300]);
        sc.seed = 5;
        sc
    };
    // Excellent link to the fast server: it gets (almost) everything.
    let good = run(&mk(50e6)).unwrap();
    // Starved link: the near server wins.
    let bad = run(&mk(5e4)).unwrap();
    let good_counts = good.per_server_counts();
    let bad_counts = bad.per_server_counts();
    assert!(
        good_counts[0] > good_counts[1],
        "good link: fast server should dominate {good_counts:?}"
    );
    assert!(
        bad_counts[1] > bad_counts[0],
        "bad link: near server should dominate {bad_counts:?}"
    );
}

/// R3 shape: predictions track reality when the model assumptions hold.
#[test]
fn predictions_track_reality() {
    let mut sc = Scenario::default_with(vec![SimServer::new(150.0), SimServer::new(150.0)], 100);
    sc.arrivals = Arrivals::Poisson { rate: 0.3 };
    sc.workload.report_interval_secs = 1.0;
    sc.seed = 3;
    let report = run(&sc).unwrap();
    assert!(
        report.median_relative_prediction_error() < 0.25,
        "median relative error {}",
        report.median_relative_prediction_error()
    );
}

/// R6 shape: the agent's ranking cost stays tiny even for big pools —
/// measured directly on the pure ranking function.
#[test]
fn ranking_scales_to_hundreds_of_servers() {
    use netsolve::agent::{rank, BalancerState, Policy, ServerSnapshot};
    use netsolve::core::{Complexity, RequestShape};
    use netsolve::core::ids::{HostId, ServerId};
    use netsolve::net::NetworkView;

    let pool: Vec<ServerSnapshot> = (0..512)
        .map(|i| ServerSnapshot {
            server_id: ServerId(i + 1),
            host: HostId(i + 1),
            address: format!("s{i}"),
            mflops: 50.0 + (i % 100) as f64 * 5.0,
            workload: (i % 7) as f64 * 20.0,
        })
        .collect();
    let shape = RequestShape { problem: "dgesv".into(), n: 500, bytes_in: 2_000_000, bytes_out: 4_000 };
    let net = NetworkView::lan_defaults();
    let mut st = BalancerState::default();
    let start = std::time::Instant::now();
    let iterations = 200;
    for _ in 0..iterations {
        let ranked = rank(
            Policy::MinimumCompletionTime,
            &pool,
            &shape,
            Complexity::new(0.6667, 3.0).unwrap(),
            &net,
            HostId(9999),
            &mut st,
        );
        assert_eq!(ranked.len(), 512);
    }
    let per_call = start.elapsed().as_secs_f64() / iterations as f64;
    assert!(per_call < 0.01, "ranking 512 servers took {per_call}s per call");
}

/// DESIGN.md §4j cross-check: `max_attempts` is a *total-tries* budget
/// with candidate cycling in BOTH the simulator and the live client.
/// Two always-failing servers and a budget of 3 must burn exactly 3
/// attempts on each side, with the third try wrapping back to an
/// already-tried candidate. (The sim used to abandon a job once the
/// ranked list was exhausted — one effective try short of live.)
#[test]
fn retry_attempt_budget_matches_live_client_cycling() {
    use std::sync::atomic::{AtomicU32, Ordering};
    use std::sync::Arc;
    use std::time::Duration;

    use netsolve::agent::{AgentCore, AgentDaemon};
    use netsolve::client::NetSolveClient;
    use netsolve::core::admission::{format_busy_detail, ShedReason};
    use netsolve::core::config::{Backoff, RetryPolicy};
    use netsolve::core::{DataObject, NetSolveError};
    use netsolve::net::{call, ChannelNetwork, Transport};
    use netsolve::proto::{Message, ServerDescriptor};

    const BUDGET: usize = 3;

    // --- Sim side: two certain-to-fail servers, budget of 3. ---
    let mut sc = Scenario::default_with(
        vec![
            SimServer::new(100.0).with_fail_prob(1.0),
            SimServer::new(100.0).with_fail_prob(1.0),
        ],
        1,
    );
    sc.max_attempts = BUDGET;
    let report = run(&sc).unwrap();
    let record = &report.requests()[0];
    assert!(!record.ok, "nothing can succeed");
    assert_eq!(record.attempts as usize, BUDGET, "sim burns the whole total-tries budget");

    // --- Live side: two hand-rolled servers that shed every request. ---
    let net = ChannelNetwork::new();
    let transport: Arc<dyn Transport> = Arc::new(net.clone());
    let agent =
        AgentDaemon::start(Arc::clone(&transport), "agent", AgentCore::with_defaults()).unwrap();
    let registry = netsolve::pdl::ProblemRegistry::with_standard_catalogue();
    let ddot_pdl = netsolve::pdl::render(registry.get("ddot").unwrap());
    let submits: Arc<[AtomicU32; 2]> = Arc::new([AtomicU32::new(0), AtomicU32::new(0)]);
    for i in 0..2usize {
        let address = format!("busy{i}");
        let mut conn = net.connect("agent").unwrap();
        let reply = call(
            conn.as_mut(),
            &Message::RegisterServer(ServerDescriptor {
                server_id: 0,
                host: format!("busyhost{i}"),
                address: address.clone(),
                mflops: 100.0,
                problems: vec!["ddot".into()],
                pdl_source: ddot_pdl.clone(),
            }),
            Duration::from_secs(5),
        )
        .unwrap();
        assert!(matches!(reply, Message::RegisterAck { accepted: true, .. }));
        let listener = net.listen(&address).unwrap();
        let submits = Arc::clone(&submits);
        // Leaked on purpose: the listener outlives the test body.
        std::thread::spawn(move || {
            while let Ok(mut conn) = listener.accept() {
                if let Ok(Message::RequestSubmit { .. }) = conn.recv() {
                    submits[i].fetch_add(1, Ordering::SeqCst);
                    let _ = conn.send(&Message::from_error(&NetSolveError::Resource(
                        format_busy_detail(ShedReason::QueueFull, 9, 1),
                    )));
                }
            }
        });
    }

    let client = NetSolveClient::new(Arc::new(net.clone()), "agent").with_retry(RetryPolicy {
        max_attempts: BUDGET,
        attempt_timeout_secs: 5.0,
        backoff: Backoff::Fixed { delay_secs: 0.0 },
        deadline_secs: 0.0,
        report_failures: true,
    });
    let inputs: Vec<DataObject> = vec![vec![1.0, 2.0].into(), vec![3.0, 4.0].into()];
    let err = client.netsl("ddot", &inputs).expect_err("everything is busy");
    assert!(matches!(err, NetSolveError::Resource(_)), "got {err}");
    assert_eq!(
        client.metrics().counter("client.attempts").get() as usize,
        BUDGET,
        "live burns the whole total-tries budget"
    );
    let counts = [submits[0].load(Ordering::SeqCst), submits[1].load(Ordering::SeqCst)];
    assert_eq!((counts[0] + counts[1]) as usize, BUDGET, "{counts:?}");
    assert_eq!(
        counts[0].max(counts[1]),
        2,
        "the third try wraps back to an already-tried candidate: {counts:?}"
    );
    drop(agent);
}
