//! Chaos soak: a full in-process domain (agent + four servers) hammered by
//! concurrent clients whose every dial goes through a fault-injecting
//! [`ChaosTransport`] — refused connections, mid-stream resets, corrupted
//! frames, injected latency. The invariant under test is the end-to-end
//! robustness contract: every request either completes with a bit-exact
//! result or fails with a clean *retryable* error. No hangs, no panics,
//! no silently wrong answers, and every injected corruption is caught by
//! the frame CRC.
//!
//! [`ChaosTransport`]: netsolve::net::ChaosTransport

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use netsolve::agent::{AgentCore, AgentDaemon, Policy};
use netsolve::client::NetSolveClient;
use netsolve::core::config::{AgentConfig, Backoff, FaultPolicy, RetryPolicy};
use netsolve::net::{ChannelNetwork, ChaosPolicy, ChaosStats, ChaosTransport, NetworkView, Transport};
use netsolve::obs::{MetricsRegistry, StatsSnapshot, Tracer};
use netsolve::server::{ServerConfig, ServerCore, ServerDaemon};

const CLIENTS: usize = 4;
const REQUESTS_PER_CLIENT: usize = 25;

struct SoakOutcome {
    ok: u64,
    failed_retryable: u64,
    stats: ChaosStats,
    metrics: StatsSnapshot,
    tracer: Arc<Tracer>,
    elapsed: Duration,
}

/// Boot the domain, run every client to completion, tear down, and report.
fn run_soak(seed: u64) -> SoakOutcome {
    let net = ChannelNetwork::new();
    let clean: Arc<dyn Transport> = Arc::new(net.clone());

    // Daemons live on the clean transport; chaos sits on the dialing side
    // of the client RPC path (queries, submissions, reports), which is the
    // path this PR hardens. Listeners pass through chaos untouched anyway.
    // The agent runs a short down-cooldown: clients honestly report their
    // chaos-hit attempts as server failures, and the default 60s blacklist
    // would otherwise let one bad burst empty the candidate pool for the
    // rest of the soak.
    let agent_config = AgentConfig {
        fault: FaultPolicy { failures_to_mark_down: 3, down_cooldown_secs: 0.5 },
        ..AgentConfig::default()
    };
    let core =
        AgentCore::new(agent_config, Policy::MinimumCompletionTime, NetworkView::lan_defaults());
    let mut agent = AgentDaemon::start(Arc::clone(&clean), "agent", core).unwrap();
    let mut servers = Vec::new();
    for i in 0..4 {
        servers.push(
            ServerDaemon::start(
                Arc::clone(&clean),
                "agent",
                ServerCore::with_standard_catalogue(),
                ServerConfig::quick(&format!("host{i}"), &format!("srv{i}"), 100.0 + 50.0 * i as f64),
            )
            .unwrap(),
        );
    }

    // >=10% refused dials, >=1% corrupted frames, plus resets and latency.
    let policy = ChaosPolicy::calm()
        .with_refusals(0.12)
        .with_corruption(0.03)
        .with_resets(0.02)
        .with_delays(0.10, Duration::from_millis(2));
    // One registry shared by the chaos layer and every client: injected
    // faults and client-observed attempts land side by side, so the
    // injected == detected invariant is assertable purely from metrics.
    let metrics = Arc::new(MetricsRegistry::new());
    let tracer = Arc::new(Tracer::new());
    let chaos = Arc::new(
        ChaosTransport::new(Arc::clone(&clean), policy, seed)
            .with_metrics(&metrics)
            .with_tracer(Arc::clone(&tracer)),
    );

    let retry = RetryPolicy {
        max_attempts: 5,
        attempt_timeout_secs: 5.0,
        backoff: Backoff::ExponentialJitter { base_secs: 0.002, cap_secs: 0.02 },
        deadline_secs: 0.0,
        report_failures: true,
    };

    let ok = Arc::new(AtomicU64::new(0));
    let failed_retryable = Arc::new(AtomicU64::new(0));
    let started = Instant::now();
    let handles: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let transport: Arc<dyn Transport> = Arc::clone(&chaos) as Arc<dyn Transport>;
            let ok = Arc::clone(&ok);
            let failed_retryable = Arc::clone(&failed_retryable);
            let metrics = Arc::clone(&metrics);
            let tracer = Arc::clone(&tracer);
            std::thread::spawn(move || {
                let client = NetSolveClient::new(transport, "agent")
                    .with_retry(retry)
                    .with_jitter_seed(seed.wrapping_mul(31).wrapping_add(c as u64))
                    .with_observability(metrics, tracer);
                for i in 0..REQUESTS_PER_CLIENT {
                    // Integer-valued vectors: the dot product is exact in
                    // f64 whatever the summation order, so the expected
                    // value is bit-comparable.
                    let x: Vec<f64> = (0..16).map(|k| ((c * 31 + i * 7 + k) % 11) as f64).collect();
                    let y: Vec<f64> = (0..16).map(|k| ((c * 13 + i * 3 + k) % 7) as f64).collect();
                    let expect: f64 = x.iter().zip(&y).map(|(a, b)| a * b).sum();
                    match client.netsl("ddot", &[x.into(), y.into()]) {
                        Ok(out) => {
                            let got = out[0].as_double().unwrap();
                            assert_eq!(
                                got.to_bits(),
                                expect.to_bits(),
                                "client {c} request {i}: result not bit-exact \
                                 ({got} vs {expect})"
                            );
                            ok.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(e) => {
                            assert!(
                                e.is_retryable(),
                                "client {c} request {i}: non-retryable error leaked \
                                 through the hardened path: {e}"
                            );
                            failed_retryable.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("a soak client panicked");
    }
    let elapsed = started.elapsed();

    for s in &mut servers {
        s.stop();
    }
    agent.stop();

    SoakOutcome {
        ok: ok.load(Ordering::Relaxed),
        failed_retryable: failed_retryable.load(Ordering::Relaxed),
        stats: chaos.stats(),
        metrics: metrics.snapshot("soak"),
        tracer,
        elapsed,
    }
}

fn assert_soak_invariants(seed: u64, outcome: &SoakOutcome) {
    let total = (CLIENTS * REQUESTS_PER_CLIENT) as u64;
    assert_eq!(
        outcome.ok + outcome.failed_retryable,
        total,
        "seed {seed}: every request must be accounted for"
    );
    // Retries plus four-way failover should absorb most of the chaos.
    assert!(
        outcome.ok >= total / 2,
        "seed {seed}: too few successes ({}/{total})",
        outcome.ok
    );
    // The chaos actually bit: dials were refused and frames corrupted.
    assert!(outcome.stats.refused > 0, "seed {seed}: no refusals injected");
    assert!(
        outcome.stats.corruptions_injected > 0,
        "seed {seed}: no corruption injected"
    );
    // Every injected corruption was detected by the frame CRC — none
    // slipped through to a solver, none double-counted.
    assert_eq!(
        outcome.stats.corruptions_injected, outcome.stats.corruptions_detected,
        "seed {seed}: corruption escaped detection"
    );
    // The same invariants hold in the mirrored metrics (what a live
    // operator would scrape): injected faults are visible and every
    // injected corruption was detected.
    let m = &outcome.metrics;
    assert_eq!(m.counter("chaos.refused"), outcome.stats.refused, "seed {seed}");
    assert_eq!(
        m.counter("chaos.corruptions_injected"),
        outcome.stats.corruptions_injected,
        "seed {seed}"
    );
    assert_eq!(
        m.counter("chaos.corruptions_injected"),
        m.counter("chaos.corruptions_detected"),
        "seed {seed}: corruption escaped detection (metrics view)"
    );
    // Client-side accounting closes: every call entered the retry loop,
    // refusals forced extra attempts, and no request ids collided even
    // with four clients sharing one tracer.
    assert_eq!(m.counter("client.calls"), total, "seed {seed}");
    assert_eq!(m.counter("client.calls_ok"), outcome.ok, "seed {seed}");
    assert_eq!(
        m.counter("client.calls_failed"),
        outcome.failed_retryable,
        "seed {seed}"
    );
    assert!(
        m.counter("client.attempt_failures") > 0,
        "seed {seed}: chaos should have failed some attempts"
    );
    assert!(
        m.counter("client.attempts") > m.counter("client.calls_ok"),
        "seed {seed}: failed attempts must show up as extra attempts \
         ({} attempts, {} successes)",
        m.counter("client.attempts"),
        m.counter("client.calls_ok")
    );
    assert_eq!(m.counter("client.request_id_collisions"), 0, "seed {seed}");
    // Tracing rode along with the whole soak: every call records at least
    // its root and rank spans (successes add attempt subtrees on top),
    // the retained window still holds client attempt spans, and the
    // injected faults appear as traceless chaos points — never stitched
    // into any request's timeline but visible to an operator.
    let spans = outcome.tracer.spans_recorded();
    assert!(
        spans >= total * 2,
        "seed {seed}: only {spans} spans recorded across {total} calls"
    );
    let retained = outcome.tracer.spans();
    assert!(
        retained.iter().any(|s| s.component == "client" && s.phase == "attempt"),
        "seed {seed}: no attempt spans retained"
    );
    assert!(
        retained.iter().any(|s| s.component == "chaos" && s.trace_id == 0),
        "seed {seed}: injected faults left no traceless chaos spans"
    );
    // No hangs: bounded attempt timeouts and backoffs keep the whole soak
    // far from pathological wall-clock.
    assert!(
        outcome.elapsed < Duration::from_secs(120),
        "seed {seed}: soak took {:?}",
        outcome.elapsed
    );
}

/// Agent-crash soak: a three-agent federation (gossip replication on)
/// serving four servers, hammered by multi-agent clients while one agent
/// — one that at least one client is actively pinned to — is killed
/// mid-run and later restarted. The contract under test is the
/// federation robustness story end to end:
///
/// * every one of the 100 solves completes (zero failed calls);
/// * no solve needs a second *server* attempt — the crash costs at most
///   the client-internal agent failover hop, never a re-run request;
/// * the failover hop is stitched into the affected request's trace;
/// * the restarted agent relearns the registry via gossip.
fn run_agent_crash_soak(seed: u64) {
    use netsolve::core::config::GossipPolicy;
    use std::sync::Mutex;

    const AGENTS: [&str; 3] = ["agent-1", "agent-2", "agent-3"];

    let net = ChannelNetwork::new();
    let clean: Arc<dyn Transport> = Arc::new(net.clone());
    let agent_config = AgentConfig {
        fault: FaultPolicy { failures_to_mark_down: 3, down_cooldown_secs: 0.5 },
        gossip: GossipPolicy {
            interval_secs: 0.05,
            entry_ttl_secs: 60.0,
            peer_miss_threshold: 2,
            round_timeout_secs: 0.5,
        },
        ..AgentConfig::default()
    };
    let start_agent = |name: &str| {
        let peers = AGENTS
            .iter()
            .filter(|a| *a != &name)
            .map(|a| a.to_string())
            .collect();
        let core = AgentCore::new(
            agent_config.clone(),
            Policy::MinimumCompletionTime,
            NetworkView::lan_defaults(),
        );
        AgentDaemon::start_federated(Arc::clone(&clean), name, core, peers).unwrap()
    };
    // Slot per agent so the killer thread can stop one and restart it.
    let agents: Arc<Mutex<Vec<Option<AgentDaemon>>>> =
        Arc::new(Mutex::new(AGENTS.iter().map(|n| Some(start_agent(n))).collect()));

    // Spread registrations across the agents: every agent is authoritative
    // for at least one server and learns the rest from gossip.
    let mut servers = Vec::new();
    for i in 0..4 {
        servers.push(
            ServerDaemon::start(
                Arc::clone(&clean),
                AGENTS[i % AGENTS.len()],
                ServerCore::with_standard_catalogue(),
                ServerConfig::quick(&format!("host{i}"), &format!("srv{i}"), 100.0 + 50.0 * i as f64),
            )
            .unwrap(),
        );
    }
    // Wait for gossip convergence: every agent sees all four servers.
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        let all = agents.lock().unwrap().iter().all(|a| {
            a.as_ref()
                .map(|a| a.core().lock().registry().all_servers().len() == 4)
                .unwrap_or(false)
        });
        if all {
            break;
        }
        assert!(Instant::now() < deadline, "seed {seed}: gossip never converged");
        std::thread::sleep(Duration::from_millis(10));
    }

    // Calm chaos policy: the *only* fault in this scenario is the agent
    // kill, so any extra server attempt is attributable to the crash.
    let metrics = Arc::new(MetricsRegistry::new());
    // A roomy span budget: the failover hop fires mid-run and its trace
    // must survive the spans of every later solve plus gossip chatter.
    let tracer = Arc::new(Tracer::with_capacity(65_536));
    let chaos = Arc::new(
        ChaosTransport::new(Arc::clone(&clean), ChaosPolicy::calm(), seed)
            .with_metrics(&metrics)
            .with_tracer(Arc::clone(&tracer)),
    );
    let retry = RetryPolicy {
        max_attempts: 5,
        attempt_timeout_secs: 5.0,
        backoff: Backoff::ExponentialJitter { base_secs: 0.002, cap_secs: 0.02 },
        deadline_secs: 0.0,
        report_failures: true,
    };

    let solved = Arc::new(AtomicU64::new(0));
    // Each client reports which agent it pinned after its first solve, so
    // the killer can pick a victim that is actually in use.
    let pins: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
    let total = (CLIENTS * REQUESTS_PER_CLIENT) as u64;

    let killer = {
        let chaos = Arc::clone(&chaos);
        let agents = Arc::clone(&agents);
        let solved = Arc::clone(&solved);
        let pins = Arc::clone(&pins);
        std::thread::spawn(move || {
            let wait_until = |cond: &dyn Fn() -> bool| {
                let deadline = Instant::now() + Duration::from_secs(60);
                while !cond() {
                    if Instant::now() >= deadline {
                        return false;
                    }
                    std::thread::sleep(Duration::from_millis(2));
                }
                true
            };
            // Mid-run (at least one pin known, ~40% of solves done), kill
            // a pinned agent: sever client connections AND stop the
            // daemon, so peers see it dead too.
            if !wait_until(&|| !pins.lock().unwrap().is_empty() && solved.load(Ordering::Relaxed) >= 2 * total / 5) {
                return String::new();
            }
            let victim = pins.lock().unwrap()[0].clone();
            let slot = AGENTS.iter().position(|a| *a == victim).expect("pin is a known agent");
            chaos.kill(&victim);
            if let Some(mut daemon) = agents.lock().unwrap()[slot].take() {
                daemon.stop();
            }
            // Let the survivors carry more of the run, then restart the
            // victim (same name, empty registry) and reconnect clients.
            wait_until(&|| solved.load(Ordering::Relaxed) >= 4 * total / 5);
            let peers = AGENTS
                .iter()
                .filter(|a| **a != victim)
                .map(|a| a.to_string())
                .collect();
            let core = AgentCore::new(
                agent_config.clone(),
                Policy::MinimumCompletionTime,
                NetworkView::lan_defaults(),
            );
            let restarted =
                AgentDaemon::start_federated(Arc::clone(&clean), &victim, core, peers).unwrap();
            agents.lock().unwrap()[slot] = Some(restarted);
            chaos.revive(&victim);
            victim
        })
    };

    let handles: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let transport: Arc<dyn Transport> = Arc::clone(&chaos) as Arc<dyn Transport>;
            let metrics = Arc::clone(&metrics);
            let tracer = Arc::clone(&tracer);
            let solved = Arc::clone(&solved);
            let pins = Arc::clone(&pins);
            std::thread::spawn(move || {
                let agent_list: Vec<String> = AGENTS.iter().map(|a| a.to_string()).collect();
                let client = NetSolveClient::new_multi(transport, &agent_list)
                    .with_retry(retry)
                    .with_jitter_seed(seed.wrapping_mul(37).wrapping_add(c as u64))
                    .with_observability(metrics, tracer);
                for i in 0..REQUESTS_PER_CLIENT {
                    let x: Vec<f64> = (0..16).map(|k| ((c * 31 + i * 7 + k) % 11) as f64).collect();
                    let y: Vec<f64> = (0..16).map(|k| ((c * 13 + i * 3 + k) % 7) as f64).collect();
                    let expect: f64 = x.iter().zip(&y).map(|(a, b)| a * b).sum();
                    let out = client
                        .netsl("ddot", &[x.into(), y.into()])
                        .unwrap_or_else(|e| {
                            panic!("seed {seed} client {c} request {i}: solve failed mid-crash: {e}")
                        });
                    assert_eq!(out[0].as_double().unwrap().to_bits(), expect.to_bits());
                    if i == 0 {
                        pins.lock().unwrap().push(client.current_agent());
                    }
                    solved.fetch_add(1, Ordering::Relaxed);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("a soak client panicked");
    }
    let victim = killer.join().expect("killer thread panicked");
    assert!(!victim.is_empty(), "seed {seed}: the kill never happened");

    // The restarted agent relearns the registry from its peers' gossip.
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        let relearned = {
            let agents = agents.lock().unwrap();
            let slot = AGENTS.iter().position(|a| *a == victim).unwrap();
            agents[slot]
                .as_ref()
                .map(|a| !a.core().lock().registry().all_servers().is_empty())
                .unwrap_or(false)
        };
        if relearned {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "seed {seed}: restarted {victim} never relearned the registry"
        );
        std::thread::sleep(Duration::from_millis(10));
    }

    let m = metrics.snapshot("soak");
    // Every solve completed, and the crash cost no re-run requests: each
    // of the 100 calls took exactly one server attempt. The failover
    // happened inside the client's agent RPC layer.
    assert_eq!(m.counter("client.calls"), total, "seed {seed}");
    assert_eq!(m.counter("client.calls_ok"), total, "seed {seed}: solves failed during crash");
    assert_eq!(m.counter("client.calls_failed"), 0, "seed {seed}");
    assert_eq!(
        m.counter("client.attempts"),
        total,
        "seed {seed}: the agent crash must not cost server-side retries"
    );
    assert!(
        m.counter("client.agent_failovers") >= 1,
        "seed {seed}: the killed agent was pinned, so at least one failover must fire"
    );
    // The failover hop is part of a real request's stitched trace.
    let retained = tracer.spans();
    let failover = retained
        .iter()
        .find(|s| s.phase == "agent_failover" && s.trace_id != 0)
        .unwrap_or_else(|| panic!("seed {seed}: no traced agent_failover point"));
    assert!(
        retained
            .iter()
            .any(|s| s.trace_id == failover.trace_id && s.component == "client" && s.phase == "call"),
        "seed {seed}: failover hop not stitched under its request's root span"
    );

    for s in &mut servers {
        s.stop();
    }
    for slot in agents.lock().unwrap().iter_mut() {
        if let Some(mut a) = slot.take() {
            a.stop();
        }
    }
}

/// Cache-enabled soak: the server runs the content-addressed solve cache
/// while the chaos transport corrupts frames on the wire, and mid-run the
/// whole cache store is corrupted *in memory* (every entry's bytes
/// flipped, insert CRCs left stale). The contract: a corrupted cached
/// reply is NEVER served —
///
/// * wire corruption of a (cached or fresh) reply is caught by the frame
///   CRC and retried (`corruptions_injected == corruptions_detected`);
/// * in-memory corruption is caught by the serve-time CRC: every swept
///   entry is dropped on its next probe (`cache_corrupt_dropped`), the
///   prober re-solves, and the store heals;
/// * every successful request, before and after the sweep, is bit-exact.
fn run_cached_soak(seed: u64) {
    const PROBLEMS: usize = 5;
    const ROUNDS: usize = 3;

    let net = ChannelNetwork::new();
    let clean: Arc<dyn Transport> = Arc::new(net.clone());
    let agent_config = AgentConfig {
        fault: FaultPolicy { failures_to_mark_down: 3, down_cooldown_secs: 0.5 },
        ..AgentConfig::default()
    };
    let core =
        AgentCore::new(agent_config, Policy::MinimumCompletionTime, NetworkView::lan_defaults());
    let mut agent = AgentDaemon::start(Arc::clone(&clean), "agent", core).unwrap();

    // One cache-enabled server, so every repeat provably lands on the
    // same cache. Keep handles to the cache and its metrics before the
    // core moves into the daemon.
    let server_core = ServerCore::with_standard_catalogue().with_cache(1 << 20);
    let cache = server_core.cache().cloned().expect("cache is on");
    let server_metrics = server_core.metrics();
    let mut server = ServerDaemon::start(
        Arc::clone(&clean),
        "agent",
        server_core,
        ServerConfig::quick("cachehost", "srv0", 100.0),
    )
    .unwrap();

    let policy = ChaosPolicy::calm()
        .with_refusals(0.10)
        .with_corruption(0.03)
        .with_delays(0.10, Duration::from_millis(2));
    let metrics = Arc::new(MetricsRegistry::new());
    let tracer = Arc::new(Tracer::new());
    let chaos = Arc::new(
        ChaosTransport::new(Arc::clone(&clean), policy, seed)
            .with_metrics(&metrics)
            .with_tracer(Arc::clone(&tracer)),
    );
    let retry = RetryPolicy {
        max_attempts: 5,
        attempt_timeout_secs: 5.0,
        backoff: Backoff::ExponentialJitter { base_secs: 0.002, cap_secs: 0.02 },
        deadline_secs: 0.0,
        report_failures: true,
    };

    // A fixed roster of distinct problems shared by every client, cycled
    // each round: after round one, virtually all requests are repeats.
    let problem = |p: usize| -> (Vec<f64>, Vec<f64>, f64) {
        let x: Vec<f64> = (0..16).map(|k| ((p * 7 + k) % 11) as f64).collect();
        let y: Vec<f64> = (0..16).map(|k| ((p * 3 + k) % 7) as f64).collect();
        let expect = x.iter().zip(&y).map(|(a, b)| a * b).sum();
        (x, y, expect)
    };
    let ok = Arc::new(AtomicU64::new(0));
    let failed_retryable = Arc::new(AtomicU64::new(0));
    let run_phase = |phase: u64| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|c| {
                let transport: Arc<dyn Transport> = Arc::clone(&chaos) as Arc<dyn Transport>;
                let metrics = Arc::clone(&metrics);
                let tracer = Arc::clone(&tracer);
                let ok = Arc::clone(&ok);
                let failed_retryable = Arc::clone(&failed_retryable);
                std::thread::spawn(move || {
                    let client = NetSolveClient::new(transport, "agent")
                        .with_retry(retry)
                        .with_jitter_seed(seed.wrapping_mul(41).wrapping_add(phase * 100 + c as u64))
                        .with_observability(metrics, tracer);
                    for _ in 0..ROUNDS {
                        for p in 0..PROBLEMS {
                            let (x, y, expect) = problem(p);
                            match client.netsl("ddot", &[x.into(), y.into()]) {
                                Ok(out) => {
                                    let got = out[0].as_double().unwrap();
                                    assert_eq!(
                                        got.to_bits(),
                                        expect.to_bits(),
                                        "seed {seed} phase {phase} client {c} problem {p}: \
                                         corrupted or wrong reply served ({got} vs {expect})"
                                    );
                                    ok.fetch_add(1, Ordering::Relaxed);
                                }
                                Err(e) => {
                                    assert!(e.is_retryable(), "non-retryable leak: {e}");
                                    failed_retryable.fetch_add(1, Ordering::Relaxed);
                                }
                            }
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("a cached-soak client panicked");
        }
    };

    // Phase 1: populate and hammer the cache through wire chaos.
    run_phase(1);
    let snap1 = server_metrics.snapshot("server");
    assert!(snap1.counter("server.cache_hits") > 0, "seed {seed}: repeats never hit");
    assert_eq!(cache.entries(), PROBLEMS, "seed {seed}: roster not fully cached");

    // Corrupt EVERY cached entry in memory, then hammer again. Each swept
    // entry must be dropped by the serve-time CRC on its next probe — not
    // one corrupted byte may reach a client.
    let corrupted = cache.corrupt_all_entries_for_test();
    assert_eq!(corrupted, PROBLEMS, "seed {seed}: sweep missed entries");
    run_phase(2);

    let total = (2 * CLIENTS * ROUNDS * PROBLEMS) as u64;
    let ok = ok.load(Ordering::Relaxed);
    let failed = failed_retryable.load(Ordering::Relaxed);
    assert_eq!(ok + failed, total, "seed {seed}: requests unaccounted for");
    assert!(ok >= total / 2, "seed {seed}: too few successes ({ok}/{total})");

    // Wire-level corruption all caught by the frame CRC (this includes
    // corrupted cached replies in flight).
    let stats = chaos.stats();
    assert!(stats.corruptions_injected > 0, "seed {seed}: wire chaos never bit");
    assert_eq!(
        stats.corruptions_injected, stats.corruptions_detected,
        "seed {seed}: wire corruption escaped the frame CRC"
    );

    // In-memory corruption all caught by the serve-time CRC: every swept
    // entry was dropped exactly once, the store healed back to a full
    // roster, and both CRC legs (insert and serve) demonstrably ran.
    let snap2 = server_metrics.snapshot("server");
    assert_eq!(
        snap2.counter("server.cache_corrupt_dropped"),
        corrupted as u64,
        "seed {seed}: swept entries must each be dropped on next probe"
    );
    assert!(
        snap2.counter("server.cache_insert_crcs") >= (2 * PROBLEMS) as u64,
        "seed {seed}: re-solves after the sweep must re-checksum on insert"
    );
    assert!(
        snap2.counter("server.cache_serve_crcs") > snap1.counter("server.cache_serve_crcs"),
        "seed {seed}: phase 2 never exercised the serve-time CRC"
    );
    assert_eq!(cache.entries(), PROBLEMS, "seed {seed}: store did not heal after the sweep");
    assert!(
        metrics.snapshot("clients").counter("client.cached_replies") > 0,
        "seed {seed}: no reply ever carried the cached marker"
    );

    server.stop();
    agent.stop();
}

#[test]
fn chaos_soak_cached_seed_1() {
    run_cached_soak(1);
}

#[test]
fn chaos_soak_cached_seed_2() {
    run_cached_soak(2);
}

#[test]
fn chaos_soak_agent_crash_seed_1() {
    run_agent_crash_soak(1);
}

#[test]
fn chaos_soak_seed_1() {
    let outcome = run_soak(1);
    assert_soak_invariants(1, &outcome);
}

#[test]
fn chaos_soak_seed_2() {
    let outcome = run_soak(2);
    assert_soak_invariants(2, &outcome);
}

#[test]
fn chaos_soak_seed_3() {
    let outcome = run_soak(3);
    assert_soak_invariants(3, &outcome);
}
