//! Chaos soak: a full in-process domain (agent + four servers) hammered by
//! concurrent clients whose every dial goes through a fault-injecting
//! [`ChaosTransport`] — refused connections, mid-stream resets, corrupted
//! frames, injected latency. The invariant under test is the end-to-end
//! robustness contract: every request either completes with a bit-exact
//! result or fails with a clean *retryable* error. No hangs, no panics,
//! no silently wrong answers, and every injected corruption is caught by
//! the frame CRC.
//!
//! [`ChaosTransport`]: netsolve::net::ChaosTransport

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use netsolve::agent::{AgentCore, AgentDaemon, Policy};
use netsolve::client::NetSolveClient;
use netsolve::core::config::{AgentConfig, Backoff, FaultPolicy, RetryPolicy};
use netsolve::net::{ChannelNetwork, ChaosPolicy, ChaosStats, ChaosTransport, NetworkView, Transport};
use netsolve::obs::{MetricsRegistry, StatsSnapshot, Tracer};
use netsolve::server::{ServerConfig, ServerCore, ServerDaemon};

const CLIENTS: usize = 4;
const REQUESTS_PER_CLIENT: usize = 25;

struct SoakOutcome {
    ok: u64,
    failed_retryable: u64,
    stats: ChaosStats,
    metrics: StatsSnapshot,
    tracer: Arc<Tracer>,
    elapsed: Duration,
}

/// Boot the domain, run every client to completion, tear down, and report.
fn run_soak(seed: u64) -> SoakOutcome {
    let net = ChannelNetwork::new();
    let clean: Arc<dyn Transport> = Arc::new(net.clone());

    // Daemons live on the clean transport; chaos sits on the dialing side
    // of the client RPC path (queries, submissions, reports), which is the
    // path this PR hardens. Listeners pass through chaos untouched anyway.
    // The agent runs a short down-cooldown: clients honestly report their
    // chaos-hit attempts as server failures, and the default 60s blacklist
    // would otherwise let one bad burst empty the candidate pool for the
    // rest of the soak.
    let agent_config = AgentConfig {
        fault: FaultPolicy { failures_to_mark_down: 3, down_cooldown_secs: 0.5 },
        ..AgentConfig::default()
    };
    let core =
        AgentCore::new(agent_config, Policy::MinimumCompletionTime, NetworkView::lan_defaults());
    let mut agent = AgentDaemon::start(Arc::clone(&clean), "agent", core).unwrap();
    let mut servers = Vec::new();
    for i in 0..4 {
        servers.push(
            ServerDaemon::start(
                Arc::clone(&clean),
                "agent",
                ServerCore::with_standard_catalogue(),
                ServerConfig::quick(&format!("host{i}"), &format!("srv{i}"), 100.0 + 50.0 * i as f64),
            )
            .unwrap(),
        );
    }

    // >=10% refused dials, >=1% corrupted frames, plus resets and latency.
    let policy = ChaosPolicy::calm()
        .with_refusals(0.12)
        .with_corruption(0.03)
        .with_resets(0.02)
        .with_delays(0.10, Duration::from_millis(2));
    // One registry shared by the chaos layer and every client: injected
    // faults and client-observed attempts land side by side, so the
    // injected == detected invariant is assertable purely from metrics.
    let metrics = Arc::new(MetricsRegistry::new());
    let tracer = Arc::new(Tracer::new());
    let chaos = Arc::new(
        ChaosTransport::new(Arc::clone(&clean), policy, seed)
            .with_metrics(&metrics)
            .with_tracer(Arc::clone(&tracer)),
    );

    let retry = RetryPolicy {
        max_attempts: 5,
        attempt_timeout_secs: 5.0,
        backoff: Backoff::ExponentialJitter { base_secs: 0.002, cap_secs: 0.02 },
        deadline_secs: 0.0,
        report_failures: true,
    };

    let ok = Arc::new(AtomicU64::new(0));
    let failed_retryable = Arc::new(AtomicU64::new(0));
    let started = Instant::now();
    let handles: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let transport: Arc<dyn Transport> = Arc::clone(&chaos) as Arc<dyn Transport>;
            let ok = Arc::clone(&ok);
            let failed_retryable = Arc::clone(&failed_retryable);
            let metrics = Arc::clone(&metrics);
            let tracer = Arc::clone(&tracer);
            std::thread::spawn(move || {
                let client = NetSolveClient::new(transport, "agent")
                    .with_retry(retry)
                    .with_jitter_seed(seed.wrapping_mul(31).wrapping_add(c as u64))
                    .with_observability(metrics, tracer);
                for i in 0..REQUESTS_PER_CLIENT {
                    // Integer-valued vectors: the dot product is exact in
                    // f64 whatever the summation order, so the expected
                    // value is bit-comparable.
                    let x: Vec<f64> = (0..16).map(|k| ((c * 31 + i * 7 + k) % 11) as f64).collect();
                    let y: Vec<f64> = (0..16).map(|k| ((c * 13 + i * 3 + k) % 7) as f64).collect();
                    let expect: f64 = x.iter().zip(&y).map(|(a, b)| a * b).sum();
                    match client.netsl("ddot", &[x.into(), y.into()]) {
                        Ok(out) => {
                            let got = out[0].as_double().unwrap();
                            assert_eq!(
                                got.to_bits(),
                                expect.to_bits(),
                                "client {c} request {i}: result not bit-exact \
                                 ({got} vs {expect})"
                            );
                            ok.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(e) => {
                            assert!(
                                e.is_retryable(),
                                "client {c} request {i}: non-retryable error leaked \
                                 through the hardened path: {e}"
                            );
                            failed_retryable.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("a soak client panicked");
    }
    let elapsed = started.elapsed();

    for s in &mut servers {
        s.stop();
    }
    agent.stop();

    SoakOutcome {
        ok: ok.load(Ordering::Relaxed),
        failed_retryable: failed_retryable.load(Ordering::Relaxed),
        stats: chaos.stats(),
        metrics: metrics.snapshot("soak"),
        tracer,
        elapsed,
    }
}

fn assert_soak_invariants(seed: u64, outcome: &SoakOutcome) {
    let total = (CLIENTS * REQUESTS_PER_CLIENT) as u64;
    assert_eq!(
        outcome.ok + outcome.failed_retryable,
        total,
        "seed {seed}: every request must be accounted for"
    );
    // Retries plus four-way failover should absorb most of the chaos.
    assert!(
        outcome.ok >= total / 2,
        "seed {seed}: too few successes ({}/{total})",
        outcome.ok
    );
    // The chaos actually bit: dials were refused and frames corrupted.
    assert!(outcome.stats.refused > 0, "seed {seed}: no refusals injected");
    assert!(
        outcome.stats.corruptions_injected > 0,
        "seed {seed}: no corruption injected"
    );
    // Every injected corruption was detected by the frame CRC — none
    // slipped through to a solver, none double-counted.
    assert_eq!(
        outcome.stats.corruptions_injected, outcome.stats.corruptions_detected,
        "seed {seed}: corruption escaped detection"
    );
    // The same invariants hold in the mirrored metrics (what a live
    // operator would scrape): injected faults are visible and every
    // injected corruption was detected.
    let m = &outcome.metrics;
    assert_eq!(m.counter("chaos.refused"), outcome.stats.refused, "seed {seed}");
    assert_eq!(
        m.counter("chaos.corruptions_injected"),
        outcome.stats.corruptions_injected,
        "seed {seed}"
    );
    assert_eq!(
        m.counter("chaos.corruptions_injected"),
        m.counter("chaos.corruptions_detected"),
        "seed {seed}: corruption escaped detection (metrics view)"
    );
    // Client-side accounting closes: every call entered the retry loop,
    // refusals forced extra attempts, and no request ids collided even
    // with four clients sharing one tracer.
    assert_eq!(m.counter("client.calls"), total, "seed {seed}");
    assert_eq!(m.counter("client.calls_ok"), outcome.ok, "seed {seed}");
    assert_eq!(
        m.counter("client.calls_failed"),
        outcome.failed_retryable,
        "seed {seed}"
    );
    assert!(
        m.counter("client.attempt_failures") > 0,
        "seed {seed}: chaos should have failed some attempts"
    );
    assert!(
        m.counter("client.attempts") > m.counter("client.calls_ok"),
        "seed {seed}: failed attempts must show up as extra attempts \
         ({} attempts, {} successes)",
        m.counter("client.attempts"),
        m.counter("client.calls_ok")
    );
    assert_eq!(m.counter("client.request_id_collisions"), 0, "seed {seed}");
    // Tracing rode along with the whole soak: every call records at least
    // its root and rank spans (successes add attempt subtrees on top),
    // the retained window still holds client attempt spans, and the
    // injected faults appear as traceless chaos points — never stitched
    // into any request's timeline but visible to an operator.
    let spans = outcome.tracer.spans_recorded();
    assert!(
        spans >= total * 2,
        "seed {seed}: only {spans} spans recorded across {total} calls"
    );
    let retained = outcome.tracer.spans();
    assert!(
        retained.iter().any(|s| s.component == "client" && s.phase == "attempt"),
        "seed {seed}: no attempt spans retained"
    );
    assert!(
        retained.iter().any(|s| s.component == "chaos" && s.trace_id == 0),
        "seed {seed}: injected faults left no traceless chaos spans"
    );
    // No hangs: bounded attempt timeouts and backoffs keep the whole soak
    // far from pathological wall-clock.
    assert!(
        outcome.elapsed < Duration::from_secs(120),
        "seed {seed}: soak took {:?}",
        outcome.elapsed
    );
}

#[test]
fn chaos_soak_seed_1() {
    let outcome = run_soak(1);
    assert_soak_invariants(1, &outcome);
}

#[test]
fn chaos_soak_seed_2() {
    let outcome = run_soak(2);
    assert_soak_invariants(2, &outcome);
}

#[test]
fn chaos_soak_seed_3() {
    let outcome = run_soak(3);
    assert_soak_invariants(3, &outcome);
}
