//! Live-path observability and the retry/accept-loop regression suite:
//!
//! * single-candidate domains get the client's full retry budget
//!   (regression: `take(max_attempts)` silently capped attempts at the
//!   candidate count);
//! * request ids are unique across clients in one process (regression:
//!   every client used to start its counter at 1);
//! * servers shed connections past their cap with a retryable Busy reply
//!   instead of spawning threads without bound;
//! * `StatsQuery` round-trips over both the channel transport and real
//!   TCP, and a chaos-soaked live trio exposes non-zero attempt /
//!   compute / fault counters through it.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use netsolve::agent::{AgentCore, AgentDaemon, Policy};
use netsolve::client::NetSolveClient;
use netsolve::core::config::{AgentConfig, Backoff, FaultPolicy, RetryPolicy};
use netsolve::core::error::Result;
use netsolve::core::NetSolveError;
use netsolve::net::{
    call, ChannelNetwork, ChaosPolicy, ChaosTransport, Connection, Listener, NetworkView,
    TcpTransport, Transport,
};
use netsolve::obs::{MetricsRegistry, StatsSnapshot, Tracer};
use netsolve::proto::Message;
use netsolve::server::{ServerConfig, ServerCore, ServerDaemon};

fn timeout() -> Duration {
    Duration::from_secs(5)
}

/// Transport decorator that refuses the first `n` dials to one address —
/// a deterministic stand-in for a server that is briefly unreachable.
struct ScriptedRefusals {
    inner: Arc<dyn Transport>,
    target: String,
    remaining: AtomicU64,
}

impl ScriptedRefusals {
    fn new(inner: Arc<dyn Transport>, target: &str, refuse_first: u64) -> Self {
        ScriptedRefusals {
            inner,
            target: target.to_string(),
            remaining: AtomicU64::new(refuse_first),
        }
    }
}

impl Transport for ScriptedRefusals {
    fn listen(&self, hint: &str) -> Result<Box<dyn Listener>> {
        self.inner.listen(hint)
    }

    fn connect(&self, address: &str) -> Result<Box<dyn Connection>> {
        if address == self.target {
            let scripted = self
                .remaining
                .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| n.checked_sub(1))
                .is_ok();
            if scripted {
                return Err(NetSolveError::ServerUnreachable(format!(
                    "scripted refusal of {address}"
                )));
            }
        }
        self.inner.connect(address)
    }

    fn unblock(&self, address: &str) {
        self.inner.unblock(address)
    }
}

/// `HistogramSnapshot::quantile_secs` / `mean_secs` edge cases: the
/// degenerate shapes (empty, one sample, extreme `q`, all mass in the
/// overflow bucket) are exactly where a cumulative-walk estimator goes
/// wrong, and the netsl-top / fleet-digest path calls these on every
/// scraped histogram, empty or not.
#[test]
fn histogram_quantile_and_mean_edge_cases() {
    use netsolve::obs::metrics::bucket_bound_secs;
    use netsolve::obs::HISTOGRAM_BUCKETS;

    // Empty: everything reports zero rather than panicking or NaN-ing.
    let metrics = MetricsRegistry::new();
    let empty = metrics.histogram("t.empty").snapshot("t.empty");
    assert_eq!(empty.count, 0);
    assert_eq!(empty.mean_secs(), 0.0);
    assert_eq!(empty.quantile_secs(0.0), 0.0);
    assert_eq!(empty.quantile_secs(0.5), 0.0);
    assert_eq!(empty.quantile_secs(1.0), 0.0);

    // Single sample: every quantile is that sample's bucket bound, and
    // the mean is exact (it comes from the sum, not the buckets).
    let h = metrics.histogram("t.single");
    h.record_secs(3e-3);
    let single = h.snapshot("t.single");
    assert_eq!(single.count, 1);
    assert!((single.mean_secs() - 3e-3).abs() < 1e-12);
    let bound = single.quantile_secs(0.5);
    assert!((3e-3..=6e-3).contains(&bound), "log bucket promise: {bound}");
    for q in [0.0, 0.25, 0.99, 1.0] {
        assert_eq!(single.quantile_secs(q), bound, "q={q}");
    }

    // q = 0.0 and q = 1.0 on a spread histogram: the walk must clamp to
    // the first and last occupied buckets (q=0 still needs the 1st
    // sample, not the 0th).
    let h = metrics.histogram("t.spread");
    h.record_secs(1e-6);
    h.record_secs(1e-3);
    h.record_secs(1.0);
    let spread = h.snapshot("t.spread");
    assert!(spread.quantile_secs(0.0) <= 2e-6);
    assert!(spread.quantile_secs(1.0) >= 1.0);
    assert!(spread.quantile_secs(0.5) >= 1e-3 && spread.quantile_secs(0.5) < 1.0);

    // All mass beyond the last bucket bound: samples clamp into the
    // overflow bucket and quantiles report its bound instead of running
    // off the end of the array.
    let h = metrics.histogram("t.overflow");
    for _ in 0..10 {
        h.record_secs(1e9);
    }
    let overflow = h.snapshot("t.overflow");
    let last_bound = bucket_bound_secs(HISTOGRAM_BUCKETS - 1);
    assert_eq!(overflow.count, 10);
    assert_eq!(overflow.quantile_secs(0.5), last_bound);
    assert_eq!(overflow.quantile_secs(1.0), last_bound);
    assert!((overflow.mean_secs() - 1e9).abs() < 1.0);
}

fn expect_stats(reply: Message) -> StatsSnapshot {
    match reply {
        Message::StatsReply(s) => s,
        other => panic!("expected StatsReply, got {other:?}"),
    }
}

/// Regression (client retry cap): one server, `max_attempts = 3`, the
/// first two dials refused. The old loop zipped candidates against the
/// attempt budget, so a single-candidate domain got exactly one attempt;
/// the fixed loop cycles the ranked list until the budget runs out.
#[test]
fn single_candidate_gets_full_retry_budget() {
    let net = ChannelNetwork::new();
    let clean: Arc<dyn Transport> = Arc::new(net.clone());
    let mut agent =
        AgentDaemon::start(Arc::clone(&clean), "agent", AgentCore::with_defaults()).unwrap();
    let mut server = ServerDaemon::start(
        Arc::clone(&clean),
        "agent",
        ServerCore::with_standard_catalogue(),
        ServerConfig::quick("only-host", "srv0", 100.0),
    )
    .unwrap();

    let flaky: Arc<dyn Transport> = Arc::new(ScriptedRefusals::new(Arc::clone(&clean), "srv0", 2));
    let client = NetSolveClient::new(flaky, "agent").with_retry(RetryPolicy {
        max_attempts: 3,
        attempt_timeout_secs: 5.0,
        backoff: Backoff::Fixed { delay_secs: 0.005 },
        deadline_secs: 0.0,
        report_failures: true,
    });

    let (outputs, report) = client
        .netsl_timed("ddot", &[vec![1.0, 2.0].into(), vec![3.0, 4.0].into()])
        .unwrap();
    assert_eq!(outputs[0].as_double().unwrap(), 11.0);
    assert_eq!(
        report.attempts, 3,
        "two refusals then success must consume three attempts on the only candidate"
    );
    let m = client.metrics().snapshot("client");
    assert_eq!(m.counter("client.attempts"), 3);
    assert_eq!(m.counter("client.attempt_failures"), 2);
    assert_eq!(m.counter("client.calls_ok"), 1);

    server.stop();
    agent.stop();
}

/// Regression (request-id collisions): clients used to start their
/// counters at 1, so any two clients in one process produced colliding
/// request ids. Ids now carry a per-client lane in the high bits; a
/// shared tracer cross-checks uniqueness.
#[test]
fn request_ids_unique_across_clients() {
    let net = ChannelNetwork::new();
    let clean: Arc<dyn Transport> = Arc::new(net.clone());
    let mut agent =
        AgentDaemon::start(Arc::clone(&clean), "agent", AgentCore::with_defaults()).unwrap();
    let mut server = ServerDaemon::start(
        Arc::clone(&clean),
        "agent",
        ServerCore::with_standard_catalogue(),
        ServerConfig::quick("h", "srv0", 100.0),
    )
    .unwrap();

    let metrics = Arc::new(MetricsRegistry::new());
    let tracer = Arc::new(Tracer::new());
    let client_a = NetSolveClient::new(Arc::clone(&clean), "agent")
        .with_observability(Arc::clone(&metrics), Arc::clone(&tracer));
    let client_b = NetSolveClient::new(Arc::clone(&clean), "agent")
        .with_observability(Arc::clone(&metrics), Arc::clone(&tracer));

    let mut ids = Vec::new();
    for client in [&client_a, &client_b] {
        for _ in 0..5 {
            let (_, report) = client
                .netsl_timed("ddot", &[vec![1.0].into(), vec![2.0].into()])
                .unwrap();
            ids.push(report.request_id);
        }
    }
    let mut deduped = ids.clone();
    deduped.sort_unstable();
    deduped.dedup();
    assert_eq!(deduped.len(), ids.len(), "request ids collided: {ids:?}");
    assert_eq!(tracer.collisions(), 0);
    assert_eq!(metrics.snapshot("client").counter("client.request_id_collisions"), 0);
    // The two clients occupy different id lanes (distinct high bits).
    assert_ne!(ids[0] >> 32, ids[5] >> 32, "clients share an id lane");

    server.stop();
    agent.stop();
}

/// A bare agent stand-in answering registrations and reports, so the
/// connection-cap test controls every connection its server ever sees
/// (no heartbeat prober dialing in mid-test).
fn stub_agent(net: &ChannelNetwork, name: &str) {
    let listener = net.listen(name).unwrap();
    std::thread::spawn(move || {
        while let Ok(mut conn) = listener.accept() {
            std::thread::spawn(move || {
                while let Ok(msg) = conn.recv() {
                    let reply = match msg {
                        Message::RegisterServer(_) => {
                            Message::RegisterAck { accepted: true, detail: "7".into() }
                        }
                        _ => Message::Pong,
                    };
                    if conn.send(&reply).is_err() {
                        return;
                    }
                }
            });
        }
    });
}

/// Regression (accept loop): past `max_connections` the server must shed
/// the connection with a retryable Busy error — visible in its metrics —
/// and recover as soon as slots free up. Before, every connection got an
/// unbounded thread and a failed spawn panicked the accept loop.
#[test]
fn connection_cap_sheds_with_retryable_busy() {
    let net = ChannelNetwork::new();
    stub_agent(&net, "agent");
    let mut config = ServerConfig::quick("h", "srv-capped", 100.0);
    config.max_connections = 2;
    let mut server = ServerDaemon::start(
        Arc::new(net.clone()),
        "agent",
        ServerCore::with_standard_catalogue(),
        config,
    )
    .unwrap();

    // Fill both slots and prove their serve threads are live.
    let mut held: Vec<Box<dyn Connection>> = Vec::new();
    for _ in 0..2 {
        let mut c = net.connect("srv-capped").unwrap();
        assert_eq!(call(c.as_mut(), &Message::Ping, timeout()).unwrap(), Message::Pong);
        held.push(c);
    }

    // The next connection is rejected with an unsolicited Busy reply.
    let mut rejected = net.connect("srv-capped").unwrap();
    match rejected.recv_timeout(timeout()).unwrap() {
        Message::Error { code, detail } => {
            let e = NetSolveError::from_code(code, detail);
            assert!(matches!(e, NetSolveError::Resource(_)), "got {e}");
            assert!(e.is_retryable(), "Busy must be retryable: {e}");
        }
        other => panic!("expected Busy error, got {other:?}"),
    }

    // Free the slots: service resumes (retry until the closed connections'
    // threads have drained).
    drop(held);
    drop(rejected);
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let mut c = net.connect("srv-capped").unwrap();
        if let Ok(Message::Pong) = call(c.as_mut(), &Message::Ping, Duration::from_millis(200)) {
            break;
        }
        assert!(Instant::now() < deadline, "server never recovered after cap shed");
        std::thread::sleep(Duration::from_millis(10));
    }

    // The shed is visible in the metrics a live operator would scrape.
    // The recovery probe's serve thread may still be draining, so the
    // stats connection itself can catch a Busy — retry like a client would.
    let stats = loop {
        let mut c = net.connect("srv-capped").unwrap();
        match call(c.as_mut(), &Message::StatsQuery, timeout()).unwrap() {
            Message::Error { code, detail } => {
                let e = NetSolveError::from_code(code, detail);
                assert!(matches!(e, NetSolveError::Resource(_)), "unexpected error: {e}");
                assert!(Instant::now() < deadline, "stats query never got past the cap");
                std::thread::sleep(Duration::from_millis(10));
            }
            reply => break expect_stats(reply),
        }
    };
    assert_eq!(stats.component, "server");
    assert!(stats.counter("server.busy_rejected") >= 1);
    assert!(stats.counter("server.accepts") >= 3);

    server.stop();
}

/// `StatsQuery` answered by both daemons over the in-process channel
/// transport: components identify themselves and counters reflect the
/// traffic that ran.
#[test]
fn stats_query_roundtrip_over_channel_transport() {
    let net = ChannelNetwork::new();
    let clean: Arc<dyn Transport> = Arc::new(net.clone());
    let mut agent =
        AgentDaemon::start(Arc::clone(&clean), "agent", AgentCore::with_defaults()).unwrap();
    let mut server = ServerDaemon::start(
        Arc::clone(&clean),
        "agent",
        ServerCore::with_standard_catalogue(),
        ServerConfig::quick("h", "srv0", 100.0),
    )
    .unwrap();
    let client = NetSolveClient::new(Arc::clone(&clean), "agent");
    client.netsl("ddot", &[vec![1.0].into(), vec![2.0].into()]).unwrap();

    let mut conn = net.connect("agent").unwrap();
    let stats = expect_stats(call(conn.as_mut(), &Message::StatsQuery, timeout()).unwrap());
    assert_eq!(stats.component, "agent");
    assert_eq!(stats.counter("agent.registrations"), 1);
    assert!(stats.counter("agent.queries") >= 1);
    assert!(stats.counter("agent.rankings") >= 1);

    let mut conn = net.connect("srv0").unwrap();
    let stats = expect_stats(call(conn.as_mut(), &Message::StatsQuery, timeout()).unwrap());
    assert_eq!(stats.component, "server");
    assert_eq!(stats.counter("server.requests"), 1);
    assert_eq!(stats.counter("server.requests_ok"), 1);
    let compute = stats.histogram("server.compute_secs").expect("compute histogram");
    assert_eq!(compute.count, 1);
    assert!(compute.sum_secs >= 0.0);

    server.stop();
    agent.stop();
}

/// The same round-trip over real TCP sockets.
#[test]
fn stats_query_roundtrip_over_tcp() {
    let transport: Arc<dyn Transport> = Arc::new(TcpTransport::new());
    let mut agent = AgentDaemon::start(
        Arc::clone(&transport),
        "127.0.0.1:0",
        AgentCore::with_defaults(),
    )
    .unwrap();
    let mut server = ServerDaemon::start(
        Arc::clone(&transport),
        agent.address(),
        ServerCore::with_standard_catalogue(),
        ServerConfig::quick("tcp-host", "127.0.0.1:0", 100.0),
    )
    .unwrap();

    let mut conn = transport.connect(agent.address()).unwrap();
    let stats = expect_stats(call(conn.as_mut(), &Message::StatsQuery, timeout()).unwrap());
    assert_eq!(stats.component, "agent");
    assert_eq!(stats.counter("agent.registrations"), 1);

    let mut conn = transport.connect(server.address()).unwrap();
    let stats = expect_stats(call(conn.as_mut(), &Message::StatsQuery, timeout()).unwrap());
    assert_eq!(stats.component, "server");

    server.stop();
    agent.stop();
}

/// Acceptance: a live trio — agent + two servers + one client, all over
/// real TCP, the client's dials chaos-soaked — answers `StatsQuery` with
/// non-zero attempt / compute / fault counters afterwards.
#[test]
fn live_trio_exposes_counters_after_chaos_run() {
    let clean: Arc<dyn Transport> = Arc::new(TcpTransport::new());
    // Short down-cooldown: honestly-reported chaos failures must not
    // empty the two-server pool for the rest of the run.
    let agent_config = AgentConfig {
        fault: FaultPolicy { failures_to_mark_down: 3, down_cooldown_secs: 0.3 },
        ..AgentConfig::default()
    };
    let core =
        AgentCore::new(agent_config, Policy::MinimumCompletionTime, NetworkView::lan_defaults());
    let mut agent = AgentDaemon::start(Arc::clone(&clean), "127.0.0.1:0", core).unwrap();
    let mut servers = Vec::new();
    for i in 0..2 {
        servers.push(
            ServerDaemon::start(
                Arc::clone(&clean),
                agent.address(),
                ServerCore::with_standard_catalogue(),
                ServerConfig::quick(&format!("host{i}"), "127.0.0.1:0", 100.0 + 100.0 * i as f64),
            )
            .unwrap(),
        );
    }

    let policy = ChaosPolicy::calm()
        .with_refusals(0.25)
        .with_delays(0.10, Duration::from_millis(1));
    let metrics = Arc::new(MetricsRegistry::new());
    let tracer = Arc::new(Tracer::new());
    let chaos: Arc<dyn Transport> =
        Arc::new(ChaosTransport::new(Arc::clone(&clean), policy, 0xBEEF).with_metrics(&metrics));
    let client = NetSolveClient::new(chaos, agent.address())
        .with_retry(RetryPolicy {
            max_attempts: 5,
            attempt_timeout_secs: 5.0,
            backoff: Backoff::ExponentialJitter { base_secs: 0.002, cap_secs: 0.02 },
            deadline_secs: 0.0,
            report_failures: true,
        })
        .with_observability(Arc::clone(&metrics), Arc::clone(&tracer));

    let mut ok = 0u32;
    for i in 0..40 {
        let x: Vec<f64> = (0..8).map(|k| ((i * 3 + k) % 5) as f64).collect();
        let y: Vec<f64> = (0..8).map(|k| ((i * 7 + k) % 3) as f64).collect();
        if client.netsl("ddot", &[x.into(), y.into()]).is_ok() {
            ok += 1;
        }
    }
    assert!(ok > 0, "no call survived the chaos run");

    // Scrape every daemon over a clean connection, exactly as the
    // netsl-stats bin would.
    let mut conn = clean.connect(agent.address()).unwrap();
    let agent_stats = expect_stats(call(conn.as_mut(), &Message::StatsQuery, timeout()).unwrap());
    assert_eq!(agent_stats.component, "agent");
    assert_eq!(agent_stats.counter("agent.registrations"), 2);
    assert!(agent_stats.counter("agent.queries") >= 40);
    assert!(
        agent_stats.counter("agent.failure_reports") > 0,
        "chaos-hit attempts must surface as fault traffic at the agent"
    );

    let mut compute_count = 0u64;
    for s in &servers {
        let mut conn = clean.connect(s.address()).unwrap();
        let stats = expect_stats(call(conn.as_mut(), &Message::StatsQuery, timeout()).unwrap());
        assert_eq!(stats.component, "server");
        compute_count += stats.histogram("server.compute_secs").map_or(0, |h| h.count);
    }
    assert_eq!(compute_count, u64::from(ok), "every success computed on some server");

    // Client-side view: chaos forced extra attempts, and the injected
    // refusals are mirrored into the same registry.
    let m = metrics.snapshot("client");
    assert_eq!(m.counter("client.calls"), 40);
    assert_eq!(m.counter("client.calls_ok"), u64::from(ok));
    assert!(m.counter("client.attempts") > 0);
    assert!(m.counter("client.attempt_failures") > 0);
    assert!(m.counter("chaos.refused") > 0, "chaos never bit");

    // Phase spans rode along with every call: the retained window holds
    // a successful call's terminal point and its attempt spans.
    assert!(tracer.spans_recorded() >= 40 * 2, "tracing went missing mid-soak");
    let retained = tracer.spans();
    assert!(retained.iter().any(|s| s.phase == "call_ok"));
    assert!(retained.iter().any(|s| s.phase == "attempt"));

    for s in &mut servers {
        s.stop();
    }
    agent.stop();
}
