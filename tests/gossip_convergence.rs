//! Gossip convergence properties: a federation of agents exchanging
//! anti-entropy digests must agree on the full server registry within a
//! bounded number of rounds, for any topology that is strongly
//! connected and any placement of the authoritative registrations.
//!
//! These tests drive [`AgentCore`]s directly — no threads, no
//! transport — so the round/bound arithmetic is exact: one "round"
//! snapshots every agent's digest, then delivers each digest along
//! every directed edge of the topology. With full-view push gossip,
//! information travels one hop per round, so the convergence bound is
//! the topology's diameter: `n - 1` rounds for a directed ring, one
//! round for a full mesh.

use netsolve::agent::{standard_descriptor, AgentCore, Policy};
use netsolve::core::config::AgentConfig;
use netsolve::core::SimTime;
use netsolve::net::NetworkView;
use proptest::prelude::*;

/// Build an `n`-agent federation with no transport attached.
fn make_cores(n: usize) -> Vec<AgentCore> {
    (0..n)
        .map(|i| {
            let mut core = AgentCore::new(
                AgentConfig::default(),
                Policy::MinimumCompletionTime,
                NetworkView::lan_defaults(),
            );
            core.set_self_address(&format!("agent-{i}"));
            core
        })
        .collect()
}

/// Register one server per placement entry: server `j` is authoritative
/// at agent `placements[j]`.
fn place_servers(cores: &mut [AgentCore], placements: &[usize], t0: SimTime) {
    for (j, &slot) in placements.iter().enumerate() {
        let desc =
            standard_descriptor(&format!("host{j}"), &format!("srv{j}"), 100.0 + j as f64);
        cores[slot]
            .register_server(&desc, t0)
            .expect("registration is valid");
    }
}

/// One synchronous gossip round: snapshot every digest first (so a round
/// moves information exactly one hop), then deliver along each directed
/// edge `(from, to)`.
fn gossip_round(cores: &mut [AgentCore], edges: &[(usize, usize)], now: SimTime) {
    let digests: Vec<_> = cores.iter().map(|c| c.gossip_digest(now)).collect();
    for &(from, to) in edges {
        cores[to].merge_gossip(&digests[from], now);
    }
}

/// The set of server addresses an agent currently knows.
fn known(core: &AgentCore) -> Vec<String> {
    let mut addrs: Vec<String> = core
        .registry()
        .all_servers()
        .into_iter()
        .map(|s| s.address.clone())
        .collect();
    addrs.sort();
    addrs
}

/// Run rounds until every agent knows every placed server, returning how
/// many rounds it took (or `None` if `max_rounds` was not enough).
fn rounds_to_converge(
    cores: &mut [AgentCore],
    edges: &[(usize, usize)],
    n_servers: usize,
    max_rounds: usize,
) -> Option<usize> {
    let mut expected: Vec<String> = (0..n_servers).map(|j| format!("srv{j}")).collect();
    expected.sort();
    for round in 0..=max_rounds {
        if cores.iter().all(|c| known(c) == expected) {
            return Some(round);
        }
        if round == max_rounds {
            break;
        }
        // Advance time a second per round: far below the 60 s TTL, so
        // nothing expires while the view is still spreading.
        let now = SimTime::from_secs(1.0 + round as f64);
        gossip_round(cores, edges, now);
    }
    None
}

fn ring_edges(n: usize) -> Vec<(usize, usize)> {
    (0..n).map(|i| (i, (i + 1) % n)).collect()
}

fn mesh_edges(n: usize) -> Vec<(usize, usize)> {
    let mut edges = Vec::new();
    for i in 0..n {
        for j in 0..n {
            if i != j {
                edges.push((i, j));
            }
        }
    }
    edges
}

proptest! {
    /// Directed ring: whatever the placement, every agent holds the full
    /// registry after at most `n - 1` rounds (the ring's diameter).
    #[test]
    fn ring_converges_within_diameter_rounds(
        n in 2usize..7,
        placements in proptest::collection::vec(0usize..64, 1..6),
    ) {
        let placements: Vec<usize> = placements.iter().map(|p| p % n).collect();
        let mut cores = make_cores(n);
        place_servers(&mut cores, &placements, SimTime::from_secs(0.0));
        let rounds =
            rounds_to_converge(&mut cores, &ring_edges(n), placements.len(), n - 1);
        prop_assert!(
            rounds.is_some(),
            "ring of {} agents did not converge within {} rounds", n, n - 1
        );
    }

    /// Full mesh: one round is always enough, and the converged view is
    /// stable — further rounds change nothing.
    #[test]
    fn mesh_converges_in_one_round_and_stays_converged(
        n in 2usize..6,
        placements in proptest::collection::vec(0usize..64, 1..6),
    ) {
        let placements: Vec<usize> = placements.iter().map(|p| p % n).collect();
        let mut cores = make_cores(n);
        place_servers(&mut cores, &placements, SimTime::from_secs(0.0));
        let edges = mesh_edges(n);
        let rounds = rounds_to_converge(&mut cores, &edges, placements.len(), 1);
        prop_assert!(rounds.is_some(), "mesh of {} agents did not converge in one round", n);

        // Stability: replaying rounds leaves every registry unchanged.
        let before: Vec<_> = cores.iter().map(known).collect();
        for extra in 0..3 {
            let now = SimTime::from_secs(10.0 + extra as f64);
            gossip_round(&mut cores, &edges, now);
        }
        let after: Vec<_> = cores.iter().map(known).collect();
        prop_assert_eq!(before, after);
    }
}

/// A dead agent's entries age out everywhere: after its peers stop
/// hearing from it for longer than the TTL, the survivors' registries
/// drop exactly the dead agent's servers and keep everything else.
#[test]
fn dead_agents_entries_expire_at_survivors() {
    let n = 3;
    let mut cores = make_cores(n);
    // One server per agent.
    place_servers(&mut cores, &[0, 1, 2], SimTime::from_secs(0.0));
    let edges = mesh_edges(n);
    let rounds = rounds_to_converge(&mut cores, &edges, 3, 1);
    assert_eq!(rounds, Some(1), "mesh converges in one round");

    // Agent 2 dies: only edges between 0 and 1 keep gossiping. Its
    // entries stop being refreshed and cross the 60 s default TTL.
    let live_edges = [(0usize, 1usize), (1, 0)];
    for round in 0..5 {
        let now = SimTime::from_secs(10.0 + 20.0 * round as f64);
        gossip_round(&mut cores[..2], &live_edges, now);
        for core in cores[..2].iter_mut() {
            core.expire_gossip(now);
        }
    }
    for (i, core) in cores[..2].iter().enumerate() {
        assert_eq!(
            known(core),
            vec!["srv0".to_string(), "srv1".to_string()],
            "survivor {i} must drop the dead agent's server and keep the rest"
        );
    }
}
