//! Live-TCP acceptance for the content-addressed solve cache's in-flight
//! coalescing (DESIGN.md §4h):
//!
//! * N concurrent identical requests produce exactly ONE `solve` span —
//!   one request leads the solve, the rest join it — and all N clients
//!   get the same answer;
//! * a solve that fails mid-flight propagates its error to every joined
//!   waiter (nobody hangs) and the error is NOT cached: the next
//!   identical request re-solves from scratch.
//!
//! Both run over real TCP sockets so the coalescing window includes
//! genuine connect/marshal latency, not just in-process handoff.

use std::sync::{Arc, Barrier};

use netsolve::agent::{AgentCore, AgentDaemon};
use netsolve::client::NetSolveClient;
use netsolve::core::{DataObject, Matrix, NetSolveError};
use netsolve::net::{TcpTransport, Transport};
use netsolve::obs::{MetricsRegistry, Tracer};
use netsolve::pdl::ProblemRegistry;
use netsolve::server::{ExecutionMode, ServerConfig, ServerCore, ServerDaemon};

const CLIENTS: usize = 6;

/// Count spans of one server phase in a shared tracer.
fn span_count(tracer: &Tracer, phase: &str) -> usize {
    tracer.spans().iter().filter(|s| s.component == "server" && s.phase == phase).count()
}

/// Boot an agent + one cache-enabled server over TCP, sharing the
/// server's tracer and metrics with the caller for assertions.
fn boot(
    mode: ExecutionMode,
) -> (AgentDaemon, ServerDaemon, Arc<dyn Transport>, String, Arc<Tracer>, Arc<MetricsRegistry>) {
    let transport: Arc<dyn Transport> = Arc::new(TcpTransport::new());
    let agent =
        AgentDaemon::start(Arc::clone(&transport), "127.0.0.1:0", AgentCore::with_defaults())
            .unwrap();
    let agent_address = agent.address().to_string();

    let tracer = Arc::new(Tracer::new());
    let core = ServerCore::new(ProblemRegistry::with_standard_catalogue(), mode)
        .with_cache(1 << 20)
        .with_tracer(Arc::clone(&tracer));
    let metrics = core.metrics();
    let server = ServerDaemon::start(
        Arc::clone(&transport),
        &agent_address,
        core,
        ServerConfig::quick("cachehost", "127.0.0.1:0", 100.0),
    )
    .unwrap();
    (agent, server, transport, agent_address, tracer, metrics)
}

/// N clients fire the same problem through a barrier; the synthetic
/// executor sleeps ~1s per solve, so every late arrival lands while the
/// leader's solve is still in flight and must coalesce onto it.
#[test]
fn concurrent_identical_requests_coalesce_onto_one_solve() {
    // 2n flops at 0.1 Mflop/s => ~1s synthetic solve for n = 50_000.
    let (mut agent, mut server, transport, agent_address, tracer, server_metrics) =
        boot(ExecutionMode::Synthetic { mflops: 0.1 });

    let client_metrics = Arc::new(MetricsRegistry::new());
    let barrier = Arc::new(Barrier::new(CLIENTS));
    let inputs: Vec<DataObject> =
        vec![vec![0.25f64; 50_000].into(), vec![0.5f64; 50_000].into()];

    let handles: Vec<_> = (0..CLIENTS)
        .map(|_| {
            let transport = Arc::clone(&transport);
            let agent_address = agent_address.clone();
            let client_metrics = Arc::clone(&client_metrics);
            let barrier = Arc::clone(&barrier);
            let inputs = inputs.clone();
            std::thread::spawn(move || {
                let client = NetSolveClient::new(transport, &agent_address)
                    .with_observability(client_metrics, Arc::new(Tracer::new()));
                barrier.wait();
                client.netsl("ddot", &inputs)
            })
        })
        .collect();

    let mut answers = Vec::new();
    for h in handles {
        let outputs = h.join().unwrap().expect("coalesced request must succeed");
        answers.push(outputs[0].as_double().unwrap());
    }
    assert_eq!(answers.len(), CLIENTS, "every client got a reply");
    assert!(answers.windows(2).all(|w| w[0] == w[1]), "all replies identical: {answers:?}");

    // The core invariant: N requests, ONE solve. Everyone else either
    // joined the in-flight solve or hit the cache the leader populated.
    assert_eq!(span_count(&tracer, "solve"), 1, "exactly one solve span for {CLIENTS} requests");
    assert_eq!(span_count(&tracer, "cache_lookup"), CLIENTS, "every request probed the cache");

    let snap = server_metrics.snapshot("server");
    assert_eq!(snap.counter("server.cache_misses"), 1, "one leader");
    assert_eq!(
        snap.counter("server.cache_coalesced") + snap.counter("server.cache_hits"),
        (CLIENTS - 1) as u64,
        "everyone else joined or hit"
    );
    assert_eq!(snap.counter("server.cache_inserts"), 1);
    assert_eq!(snap.counter("server.requests_ok"), CLIENTS as u64);
    // Insert-time CRC ran once; serve-time CRC ran for every consumer of
    // the shared bytes — post-publish hits AND coalesced waiters alike.
    assert_eq!(snap.counter("server.cache_insert_crcs"), 1);
    assert_eq!(
        snap.counter("server.cache_serve_crcs"),
        snap.counter("server.cache_hits") + snap.counter("server.cache_coalesced")
    );
    assert_eq!(snap.counter("server.cache_corrupt_dropped"), 0);

    // The cached=true wire marker reached every non-leader client.
    assert_eq!(
        client_metrics.snapshot("client").counter("client.cached_replies"),
        (CLIENTS - 1) as u64,
        "all but the leader saw a cached/coalesced reply"
    );

    server.stop();
    agent.stop();
}

/// A solve that dies mid-flight (singular matrix: LU hits its zero pivot
/// at the LAST elimination step, long after the waiters have joined)
/// must hand that error to every joined waiter — no hung clients — and
/// must NOT leave the error in the cache: the next identical request
/// becomes a fresh leader and re-solves.
#[test]
fn mid_solve_failure_reaches_every_joined_waiter_and_is_not_cached() {
    let (mut agent, mut server, transport, agent_address, tracer, server_metrics) =
        boot(ExecutionMode::Real);

    // diag(1, .., 1, 0): partial pivoting only discovers the singularity
    // at step n-1, so the failure lands after O(n^3) of real work —
    // plenty of window for the barrier-released waiters to coalesce.
    let n = 220;
    let a = Matrix::from_fn(n, n, |i, j| if i == j && i < n - 1 { 1.0 } else { 0.0 });
    let b = vec![1.0f64; n];
    let inputs: Vec<DataObject> = vec![a.into(), b.into()];

    let barrier = Arc::new(Barrier::new(CLIENTS));
    let handles: Vec<_> = (0..CLIENTS)
        .map(|_| {
            let transport = Arc::clone(&transport);
            let agent_address = agent_address.clone();
            let barrier = Arc::clone(&barrier);
            let inputs = inputs.clone();
            std::thread::spawn(move || {
                let client = NetSolveClient::new(transport, &agent_address);
                barrier.wait();
                client.netsl("dgesv", &inputs)
            })
        })
        .collect();

    for h in handles {
        // join() returning at all proves no waiter hung on the dead solve.
        let err = h.join().unwrap().expect_err("singular system must fail");
        assert!(
            matches!(err, NetSolveError::Numerical(_)),
            "waiters get the leader's real error, got: {err}"
        );
    }

    let snap = server_metrics.snapshot("server");
    assert_eq!(snap.counter("server.requests_failed"), CLIENTS as u64);
    assert_eq!(snap.counter("server.cache_inserts"), 0, "errors are never cached");
    assert_eq!(snap.gauge("server.cache_entries"), 0);
    let solves_before = span_count(&tracer, "solve");
    assert!(solves_before >= 1);

    // Nothing poisoned: the same request after the dust settles is a
    // fresh miss that re-solves (a cached error would skip the solver).
    let client = NetSolveClient::new(Arc::clone(&transport), &agent_address);
    let err = client.netsl("dgesv", &inputs).expect_err("still singular");
    assert!(matches!(err, NetSolveError::Numerical(_)), "got: {err}");
    assert_eq!(span_count(&tracer, "solve"), solves_before + 1, "the retry really re-solved");

    server.stop();
    agent.stop();
}

/// DESIGN.md §4j / ROADMAP §3 regression: non-deterministic problems
/// must never be served from the cache. Two identical seed-0 `quad_mc`
/// submissions each run a fresh solve and return *independent* Monte
/// Carlo estimates; a pinned nonzero seed reproduces bit-for-bit but
/// STILL bypasses the cache (the bypass is per-problem, not per-seed —
/// a seeded entry must not shadow a later seed-0 run); and deterministic
/// problems keep hitting the cache as before.
#[test]
fn nondeterministic_problems_bypass_the_cache() {
    let (mut agent, mut server, transport, agent_address, tracer, server_metrics) =
        boot(ExecutionMode::Real);
    let client = NetSolveClient::new(Arc::clone(&transport), &agent_address);

    // seed 0 = "use fresh server entropy each run".
    let pi = std::f64::consts::PI;
    let fresh: Vec<DataObject> = vec![
        "sin".into(),
        DataObject::Double(0.0),
        DataObject::Double(pi),
        DataObject::Int(200_000),
        DataObject::Int(0),
    ];
    let first = client.netsl("quad_mc", &fresh).unwrap()[0].as_double().unwrap();
    let second = client.netsl("quad_mc", &fresh).unwrap()[0].as_double().unwrap();
    assert_ne!(first, second, "identical seed-0 submissions must give independent estimates");
    for est in [first, second] {
        // Independent, but both still estimates of ∫sin over [0, π] = 2.
        assert!((est - 2.0).abs() < 0.05, "MC estimate off: {est}");
    }
    assert_eq!(span_count(&tracer, "solve"), 2, "both submissions really solved");

    // Pinned seed: reproducible answers, identical requests — and still
    // no cache traffic.
    let pinned: Vec<DataObject> = vec![
        "sin".into(),
        DataObject::Double(0.0),
        DataObject::Double(pi),
        DataObject::Int(50_000),
        DataObject::Int(42),
    ];
    let p1 = client.netsl("quad_mc", &pinned).unwrap()[0].as_double().unwrap();
    let p2 = client.netsl("quad_mc", &pinned).unwrap()[0].as_double().unwrap();
    assert_eq!(p1, p2, "a pinned seed is reproducible");
    assert_eq!(span_count(&tracer, "solve"), 4, "reproducible != cacheable");

    let snap = server_metrics.snapshot("server");
    assert_eq!(snap.counter("server.cache_bypass_nondet"), 4);
    assert_eq!(snap.counter("server.cache_inserts"), 0, "nondet results are never cached");
    assert_eq!(snap.counter("server.cache_hits"), 0);
    assert_eq!(snap.counter("server.cache_misses"), 0, "bypass skips the lookup entirely");

    // Determinism intact: the same dgesv twice is one solve + one hit.
    let a = Matrix::identity(16);
    let b = vec![1.0f64; 16];
    let det_inputs: Vec<DataObject> = vec![a.into(), b.clone().into()];
    let x1 = client.netsl("dgesv", &det_inputs).unwrap();
    let x2 = client.netsl("dgesv", &det_inputs).unwrap();
    assert_eq!(x1[0].as_vector().unwrap(), x2[0].as_vector().unwrap());
    let snap = server_metrics.snapshot("server");
    assert_eq!(snap.counter("server.cache_hits"), 1, "deterministic problems still hit");
    assert_eq!(snap.counter("server.cache_inserts"), 1);

    server.stop();
    agent.stop();
}
