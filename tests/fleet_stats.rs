//! Fleet telemetry end-to-end: windowed stats digests replicate over
//! gossip like registry entries do, so **one** `FleetStatsQuery` to any
//! agent returns recent rate/percentile series for every live daemon in
//! the federation — and a dead daemon's series TTL-expires from the
//! survivors' replies. The p99 exemplar carried by a server digest is a
//! real trace id: pulling it back through `TraceQuery` stitches into the
//! same causal timeline `netsl-trace` renders.

use std::sync::Arc;
use std::time::{Duration, Instant};

use netsolve::agent::{AgentCore, AgentDaemon, Policy};
use netsolve::client::NetSolveClient;
use netsolve::core::config::{AgentConfig, GossipPolicy, TelemetryPolicy};
use netsolve::net::{call, ChannelNetwork, NetworkView, Transport};
use netsolve::obs::{stitch, MetricsRegistry, SpanRecord, StatsDigest, Tracer};
use netsolve::proto::Message;
use netsolve::server::{ServerConfig, ServerCore, ServerDaemon};

fn timeout() -> Duration {
    Duration::from_secs(5)
}

fn wait_for(what: &str, cond: &dyn Fn() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// Agent config with gossip and telemetry fast enough for tests: gossip
/// every 30 ms, telemetry sampled every 50 ms, entries/digests expiring
/// after `ttl` seconds.
fn fast_core(ttl: f64) -> AgentCore {
    let config = AgentConfig {
        gossip: GossipPolicy {
            interval_secs: 0.03,
            entry_ttl_secs: ttl,
            peer_miss_threshold: 1,
            round_timeout_secs: 0.5,
        },
        telemetry: TelemetryPolicy { tick_secs: 0.05, ..TelemetryPolicy::default() },
        ..AgentConfig::default()
    };
    AgentCore::new(config, Policy::MinimumCompletionTime, NetworkView::lan_defaults())
}

/// One `FleetStatsQuery` scrape, exactly as `netsl-top` performs it.
fn scrape_fleet(transport: &Arc<dyn Transport>, agent: &str) -> Vec<StatsDigest> {
    let mut conn = transport.connect(agent).expect("dial agent");
    match call(conn.as_mut(), &Message::FleetStatsQuery, timeout()).expect("scrape") {
        Message::FleetStatsReply { digests } => digests,
        other => panic!("expected FleetStatsReply, got {other:?}"),
    }
}

fn origins(digests: &[StatsDigest]) -> Vec<String> {
    let mut o: Vec<String> = digests.iter().map(|d| d.origin.clone()).collect();
    o.sort();
    o
}

/// Two federated agents, one server each. A single scrape of *either*
/// agent must eventually carry all four daemons' digest series: its own,
/// its local server's (scraped directly), and the remote pair's
/// (replicated by gossip piggyback).
#[test]
fn one_scrape_of_any_agent_covers_the_whole_fleet() {
    let net = ChannelNetwork::new();
    let transport: Arc<dyn Transport> = Arc::new(net.clone());
    let mut agent_a = AgentDaemon::start_federated(
        Arc::clone(&transport),
        "agent-a",
        fast_core(60.0),
        vec!["agent-b".into()],
    )
    .unwrap();
    let mut agent_b = AgentDaemon::start_federated(
        Arc::clone(&transport),
        "agent-b",
        fast_core(60.0),
        vec!["agent-a".into()],
    )
    .unwrap();
    let mut server_a = ServerDaemon::start(
        Arc::clone(&transport),
        "agent-a",
        ServerCore::with_standard_catalogue(),
        ServerConfig::quick("host-a", "srv-a", 100.0),
    )
    .unwrap();
    let mut server_b = ServerDaemon::start(
        Arc::clone(&transport),
        "agent-b",
        ServerCore::with_standard_catalogue(),
        ServerConfig::quick("host-b", "srv-b", 150.0),
    )
    .unwrap();

    // Drive a little traffic so the digests carry nonzero solve rates.
    let client = NetSolveClient::new(Arc::clone(&transport), "agent-a");
    for _ in 0..5 {
        client.netsl("ddot", &[vec![1.0, 2.0].into(), vec![3.0, 4.0].into()]).unwrap();
    }

    let expected = vec![
        "agent-a".to_string(),
        "agent-b".to_string(),
        "srv-a".to_string(),
        "srv-b".to_string(),
    ];
    // Right after startup every origin may already be present (gossip
    // replicates digests within one interval) while the series behind
    // them are still empty — so wait until the digests carry substance:
    // positive windows everywhere and a nonzero fleet-wide solve rate.
    for scraped in ["agent-a", "agent-b"] {
        let expected = expected.clone();
        wait_for(&format!("{scraped} to hold the whole fleet's digests"), &|| {
            let ds = scrape_fleet(&transport, scraped);
            origins(&ds) == expected
                && ds.iter().all(|d| d.window_secs > 0.0)
                && ds.iter().map(|d| d.rate("server.requests")).sum::<f64>() > 0.0
        });
    }

    // The digests are real series summaries, not placeholders: the
    // servers' windows are positive and somebody recorded the solves.
    let digests = scrape_fleet(&transport, "agent-a");
    for d in &digests {
        assert!(d.window_secs > 0.0, "{}: empty window", d.origin);
        assert!(
            d.component == if d.origin.starts_with("srv") { "server" } else { "agent" },
            "{}: component {}",
            d.origin,
            d.component
        );
    }
    let total_rate: f64 =
        digests.iter().filter(|d| d.component == "server").map(|d| d.rate("server.requests")).sum();
    assert!(total_rate > 0.0, "five solves must show up as a nonzero fleet solve rate");

    server_a.stop();
    server_b.stop();
    agent_a.stop();
    agent_b.stop();
}

/// When a server and its agent die, the survivors stop refreshing their
/// digest series, and after the gossip TTL one scrape of the surviving
/// agent no longer mentions them — dead daemons age out of the fleet
/// view exactly like dead registry entries.
#[test]
fn dead_peers_series_ttl_expire_from_survivors() {
    let net = ChannelNetwork::new();
    let transport: Arc<dyn Transport> = Arc::new(net.clone());
    let ttl = 0.6;
    let mut agent_a = AgentDaemon::start_federated(
        Arc::clone(&transport),
        "agent-a",
        fast_core(ttl),
        vec!["agent-b".into()],
    )
    .unwrap();
    let mut agent_b = AgentDaemon::start_federated(
        Arc::clone(&transport),
        "agent-b",
        fast_core(ttl),
        vec!["agent-a".into()],
    )
    .unwrap();
    let mut server_b = ServerDaemon::start(
        Arc::clone(&transport),
        "agent-b",
        ServerCore::with_standard_catalogue(),
        ServerConfig::quick("host-b", "srv-b", 150.0),
    )
    .unwrap();

    wait_for("agent-a to learn srv-b and agent-b series", &|| {
        let o = origins(&scrape_fleet(&transport, "agent-a"));
        o.contains(&"srv-b".to_string()) && o.contains(&"agent-b".to_string())
    });

    // Kill the b side. agent-a keeps gossiping into the void; nothing
    // refreshes the b-series any more, so they cross the TTL.
    server_b.stop();
    agent_b.stop();
    net.set_down("agent-b");
    net.set_down("srv-b");

    wait_for("dead b-side series to TTL-expire at agent-a", &|| {
        let o = origins(&scrape_fleet(&transport, "agent-a"));
        !o.contains(&"srv-b".to_string()) && !o.contains(&"agent-b".to_string())
    });
    // The survivor's own series never expires — it refreshes itself.
    assert!(
        origins(&scrape_fleet(&transport, "agent-a")).contains(&"agent-a".to_string()),
        "agent-a must keep its own series"
    );

    agent_a.stop();
}

/// The p99 exemplar in a scraped server digest is a live trace id: the
/// trace it names pulls back through `TraceQuery` and stitches into a
/// full client→agent→server timeline, which is exactly the
/// netsl-top → netsl-trace workflow.
#[test]
fn digest_p99_exemplar_resolves_to_a_stitched_timeline() {
    let net = ChannelNetwork::new();
    let transport: Arc<dyn Transport> = Arc::new(net.clone());
    let mut agent =
        AgentDaemon::start(Arc::clone(&transport), "agent", fast_core(60.0)).unwrap();
    let mut server = ServerDaemon::start(
        Arc::clone(&transport),
        "agent",
        ServerCore::with_standard_catalogue(),
        ServerConfig::quick("h", "srv0", 100.0),
    )
    .unwrap();

    let metrics = Arc::new(MetricsRegistry::new());
    let tracer = Arc::new(Tracer::new());
    let client = NetSolveClient::new(Arc::clone(&transport), "agent")
        .with_observability(Arc::clone(&metrics), Arc::clone(&tracer));
    for _ in 0..8 {
        client.netsl("ddot", &[vec![1.0, 2.0].into(), vec![3.0, 4.0].into()]).unwrap();
    }

    // Wait for the agent's sampler to scrape a server digest whose
    // compute histogram carries a p99 exemplar.
    let mut exemplar = 0u128;
    wait_for("a server digest with a p99 exemplar", &|| {
        scrape_fleet(&transport, "agent").iter().any(|d| {
            d.component == "server"
                && d.quantiles("server.compute_secs").is_some_and(|q| q.p99_exemplar != 0)
        })
    });
    for d in scrape_fleet(&transport, "agent") {
        if let Some(q) = d.quantiles("server.compute_secs") {
            if q.p99_exemplar != 0 {
                exemplar = q.p99_exemplar;
            }
        }
    }
    assert_ne!(exemplar, 0);

    // netsl-trace's pull loop in miniature: ask every daemon for the
    // exemplar's spans, add the client's own records, stitch.
    let mut records: Vec<SpanRecord> = tracer.snapshot_trace(exemplar).to_vec();
    for address in ["agent", "srv0"] {
        let mut conn = transport.connect(address).unwrap();
        if let Message::TraceReply { spans, .. } =
            call(conn.as_mut(), &Message::TraceQuery { trace_id: exemplar }, timeout()).unwrap()
        {
            records.extend(spans);
        }
    }
    let timelines = stitch(&records);
    assert_eq!(timelines.len(), 1, "the exemplar names exactly one trace");
    let t = &timelines[0];
    assert_eq!(t.trace_id, exemplar);
    let has = |component: &str, phase: &str| {
        t.entries.iter().any(|e| e.span.component == component && e.span.phase == phase)
    };
    assert!(has("client", "call"), "timeline roots at the client call");
    assert!(has("server", "solve"), "timeline reaches the server's solve span");

    server.stop();
    agent.stop();
}
