//! End-to-end distributed tracing: wire-propagated span context and the
//! stitched request timeline.
//!
//! * a live trio answers `TraceQuery` and the pulled spans stitch with
//!   the client's own (dump-file round-tripped) records into one causal
//!   tree — client call at the root, agent scoring under the rank span,
//!   server queue/solve under the attempt that carried the request;
//! * under the chaos transport, every retried attempt is a distinct
//!   span of the same trace and only the surviving attempt grows a
//!   server subtree;
//! * a deadline-exhausted call ends its trace with a terminal
//!   `deadline_exhausted` span;
//! * peers from before the trace protocol answer `TraceQuery` with
//!   their generic error, which readers report as *unsupported* — over
//!   the channel transport and over real TCP.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use netsolve::agent::{AgentCore, AgentDaemon};
use netsolve::client::NetSolveClient;
use netsolve::core::config::{Backoff, RetryPolicy};
use netsolve::core::error::Result;
use netsolve::core::NetSolveError;
use netsolve::net::{
    call, ChannelNetwork, ChaosPolicy, ChaosTransport, Connection, Listener, TcpTransport,
    Transport,
};
use netsolve::obs::{render, stitch, MetricsRegistry, SpanRecord, Timeline, Tracer};
use netsolve::proto::Message;
use netsolve::server::{ServerConfig, ServerCore, ServerDaemon};

fn timeout() -> Duration {
    Duration::from_secs(5)
}

/// Pull one peer's retained spans, exactly as `netsl-trace` does.
/// `Ok(None)` means the peer predates `TraceQuery`.
fn pull_spans(
    transport: &Arc<dyn Transport>,
    address: &str,
    trace_id: u128,
) -> Result<Option<(String, Vec<SpanRecord>)>> {
    let mut conn = transport.connect(address)?;
    let reply = call(conn.as_mut(), &Message::TraceQuery { trace_id }, timeout())?;
    match reply {
        Message::TraceReply { component, spans } => Ok(Some((component, spans))),
        Message::Error { .. } => Ok(None),
        other => Err(NetSolveError::Protocol(format!("unexpected reply {}", other.name()))),
    }
}

/// Depth of the first entry matching `component/phase`, or None.
fn depth_of(t: &Timeline, component: &str, phase: &str) -> Option<usize> {
    t.entries
        .iter()
        .find(|e| e.span.component == component && e.span.phase == phase)
        .map(|e| e.depth)
}

/// A full netsl-trace run in miniature: TraceQuery the agent and the
/// server, round-trip the client's spans through the dump-line format,
/// stitch everything and check the causal tree plus the rendering.
#[test]
fn trace_query_stitches_live_trio_into_one_timeline() {
    let net = ChannelNetwork::new();
    let clean: Arc<dyn Transport> = Arc::new(net.clone());
    let mut agent =
        AgentDaemon::start(Arc::clone(&clean), "agent", AgentCore::with_defaults()).unwrap();
    let mut server = ServerDaemon::start(
        Arc::clone(&clean),
        "agent",
        ServerCore::with_standard_catalogue(),
        ServerConfig::quick("h", "srv0", 100.0),
    )
    .unwrap();

    let metrics = Arc::new(MetricsRegistry::new());
    let tracer = Arc::new(Tracer::new());
    let client = NetSolveClient::new(Arc::clone(&clean), "agent")
        .with_observability(Arc::clone(&metrics), Arc::clone(&tracer));
    let (outputs, report) = client
        .netsl_timed("ddot", &[vec![1.0, 2.0].into(), vec![3.0, 4.0].into()])
        .unwrap();
    assert_eq!(outputs[0].as_double().unwrap(), 11.0);
    assert_ne!(report.trace_id, 0, "every call mints a trace id");

    // Client side travels as a dump file: lines out, records back.
    let mut records: Vec<SpanRecord> = tracer
        .snapshot_trace(report.trace_id)
        .iter()
        .map(|r| SpanRecord::from_line(&r.to_line()).expect("dump line parses back"))
        .collect();
    for address in ["agent", "srv0"] {
        let (component, spans) =
            pull_spans(&clean, address, report.trace_id).unwrap().expect("trio answers TraceQuery");
        assert_eq!(component, if address == "agent" { "agent" } else { "server" });
        assert!(!spans.is_empty(), "{address} retained no spans for the trace");
        records.extend(spans);
    }

    let timelines = stitch(&records);
    assert_eq!(timelines.len(), 1, "one call, one timeline");
    let t = &timelines[0];
    assert_eq!(t.trace_id, report.trace_id);

    // The causal tree: call at the root; agent scoring nested under the
    // client's rank span; server work nested under the client's attempt
    // span — all stitched across three processes' records.
    assert_eq!(depth_of(t, "client", "call"), Some(0));
    assert_eq!(depth_of(t, "client", "rank"), Some(1));
    assert_eq!(depth_of(t, "agent", "score"), Some(2), "agent work nests under rank");
    assert_eq!(depth_of(t, "client", "attempt"), Some(1));
    for phase in ["connect", "marshal", "wait"] {
        assert_eq!(depth_of(t, "client", phase), Some(2), "{phase} nests under attempt");
    }
    for phase in ["queue", "solve"] {
        assert_eq!(depth_of(t, "server", phase), Some(2), "{phase} nests under attempt");
    }
    let attempt_span = t
        .entries
        .iter()
        .find(|e| e.span.phase == "attempt")
        .map(|e| e.span.span_id)
        .unwrap();
    let solve = t.entries.iter().find(|e| e.span.phase == "solve").map(|e| &e.span).unwrap();
    assert_eq!(solve.parent_span, attempt_span, "wire carried the attempt span to the server");
    assert_eq!(solve.request_id, report.request_id);

    let rendered = render(t);
    assert!(rendered.contains(&format!("trace {:032x}", report.trace_id)));
    assert!(rendered.contains("client/call"));
    assert!(rendered.contains("server/solve"));
    assert!(rendered.contains("critical path:"), "breakdown line missing:\n{rendered}");

    server.stop();
    agent.stop();
}

/// Chaos-path acceptance: with dials refused at random, a call that
/// survived on a retry shows each attempt as a distinct span of one
/// trace, and only the surviving attempt has a server subtree.
#[test]
fn retried_attempts_are_distinct_spans_under_one_trace() {
    let net = ChannelNetwork::new();
    let clean: Arc<dyn Transport> = Arc::new(net.clone());
    let mut agent =
        AgentDaemon::start(Arc::clone(&clean), "agent", AgentCore::with_defaults()).unwrap();
    let mut server = ServerDaemon::start(
        Arc::clone(&clean),
        "agent",
        ServerCore::with_standard_catalogue(),
        ServerConfig::quick("h", "srv0", 100.0),
    )
    .unwrap();

    let metrics = Arc::new(MetricsRegistry::new());
    let tracer = Arc::new(Tracer::new());
    let chaos: Arc<dyn Transport> = Arc::new(
        ChaosTransport::new(Arc::clone(&clean), ChaosPolicy::calm().with_refusals(0.5), 0x7ACE)
            .with_metrics(&metrics)
            .with_tracer(Arc::clone(&tracer)),
    );
    let client = NetSolveClient::new(chaos, "agent")
        .with_retry(RetryPolicy {
            max_attempts: 6,
            attempt_timeout_secs: 5.0,
            backoff: Backoff::Fixed { delay_secs: 0.002 },
            deadline_secs: 0.0,
            report_failures: true,
        })
        .with_observability(Arc::clone(&metrics), Arc::clone(&tracer));

    // The seeded chaos stream is deterministic; hunt for the first call
    // that needed a retry and still succeeded, then freeze its trace.
    let mut survivor = None;
    for _ in 0..60 {
        if let Ok((_, report)) =
            client.netsl_timed("ddot", &[vec![1.0, 2.0].into(), vec![3.0, 4.0].into()])
        {
            if report.attempts >= 2 {
                survivor = Some(report);
                break;
            }
        }
    }
    let report = survivor.expect("no call retried and succeeded under 50% refusals");

    let mut records = tracer.snapshot_trace(report.trace_id);
    let (_, server_spans) =
        pull_spans(&clean, "srv0", report.trace_id).unwrap().expect("server answers TraceQuery");
    records.extend(server_spans);
    let timelines = stitch(&records);
    assert_eq!(timelines.len(), 1);
    let t = &timelines[0];

    let attempts: Vec<&SpanRecord> = t
        .entries
        .iter()
        .filter(|e| e.span.component == "client" && e.span.phase == "attempt")
        .map(|e| &e.span)
        .collect();
    assert_eq!(attempts.len() as u32, report.attempts, "every attempt is its own span");
    let mut ids: Vec<u64> = attempts.iter().map(|s| s.span_id).collect();
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len() as u32, report.attempts, "attempt span ids are distinct");
    assert!(attempts.iter().all(|s| s.trace_id == report.trace_id));
    assert!(
        t.entries.iter().any(|e| e.span.phase == "attempt_failed"),
        "the refused attempt left its failure point in the trace"
    );
    let solves: Vec<&SpanRecord> =
        t.entries.iter().filter(|e| e.span.phase == "solve").map(|e| &e.span).collect();
    assert_eq!(solves.len(), 1, "only the surviving attempt reached a server");
    assert!(
        ids.binary_search(&solves[0].parent_span).is_ok(),
        "the server subtree hangs off one of the attempt spans"
    );

    let rendered = render(t);
    assert!(rendered.matches("client/attempt").count() >= 2, "timeline shows the retry:\n{rendered}");

    // The injected faults themselves are traceless points — retained
    // for operators, never stitched into a request timeline.
    assert!(
        tracer.spans().iter().any(|s| s.component == "chaos" && s.trace_id == 0),
        "chaos faults record traceless spans"
    );

    server.stop();
    agent.stop();
}

/// Transport decorator refusing every dial to one address, so a call
/// burns its whole deadline on retries.
struct RefuseAll {
    inner: Arc<dyn Transport>,
    target: String,
    refused: AtomicU64,
}

impl Transport for RefuseAll {
    fn listen(&self, hint: &str) -> Result<Box<dyn Listener>> {
        self.inner.listen(hint)
    }

    fn connect(&self, address: &str) -> Result<Box<dyn Connection>> {
        if address == self.target {
            self.refused.fetch_add(1, Ordering::Relaxed);
            return Err(NetSolveError::ServerUnreachable(format!("refusing {address}")));
        }
        self.inner.connect(address)
    }

    fn unblock(&self, address: &str) {
        self.inner.unblock(address)
    }
}

/// A call that exhausts its deadline ends its trace with a terminal
/// `deadline_exhausted` span, so the timeline says *why* it stopped.
#[test]
fn deadline_exhaustion_leaves_terminal_span() {
    let net = ChannelNetwork::new();
    let clean: Arc<dyn Transport> = Arc::new(net.clone());
    let mut agent =
        AgentDaemon::start(Arc::clone(&clean), "agent", AgentCore::with_defaults()).unwrap();
    let mut server = ServerDaemon::start(
        Arc::clone(&clean),
        "agent",
        ServerCore::with_standard_catalogue(),
        ServerConfig::quick("h", "srv0", 100.0),
    )
    .unwrap();

    let tracer = Arc::new(Tracer::new());
    let refusing: Arc<dyn Transport> = Arc::new(RefuseAll {
        inner: Arc::clone(&clean),
        target: "srv0".into(),
        refused: AtomicU64::new(0),
    });
    let client = NetSolveClient::new(refusing, "agent")
        .with_retry(RetryPolicy {
            max_attempts: 1000,
            attempt_timeout_secs: 1.0,
            backoff: Backoff::Fixed { delay_secs: 0.02 },
            deadline_secs: 0.08,
            report_failures: false,
        })
        .with_observability(Arc::new(MetricsRegistry::new()), Arc::clone(&tracer));

    let err = client
        .netsl("ddot", &[vec![1.0].into(), vec![2.0].into()])
        .expect_err("every dial refused, the deadline must expire");
    assert!(matches!(err, NetSolveError::Timeout(_)), "got {err}");

    let spans = tracer.spans();
    let terminal = spans
        .iter()
        .find(|s| s.phase == "deadline_exhausted")
        .expect("trace records why the call stopped");
    assert_ne!(terminal.trace_id, 0);
    let same_trace: Vec<_> = spans.iter().filter(|s| s.trace_id == terminal.trace_id).collect();
    assert!(
        same_trace.iter().any(|s| s.phase == "attempt"),
        "the exhausted trace still shows the attempts that burned the budget"
    );
    assert!(
        same_trace.iter().all(|s| s.phase != "call_ok"),
        "an exhausted call cannot also report success"
    );

    server.stop();
    agent.stop();
}

/// Answer every frame with the generic "cannot handle" error — the
/// behaviour of a pre-trace-protocol daemon.
fn legacy_stub(listener: Box<dyn Listener>) {
    std::thread::spawn(move || {
        while let Ok(mut conn) = listener.accept() {
            std::thread::spawn(move || {
                while let Ok(msg) = conn.recv() {
                    let reply = Message::from_error(&NetSolveError::Protocol(format!(
                        "cannot handle {}",
                        msg.name()
                    )));
                    if conn.send(&reply).is_err() {
                        return;
                    }
                }
            });
        }
    });
}

/// Version tolerance over the channel transport: a peer from before the
/// trace protocol answers `TraceQuery` with its generic error, and the
/// netsl-trace pull reports it as unsupported rather than failing.
#[test]
fn trace_query_unsupported_peer_over_channel() {
    let net = ChannelNetwork::new();
    let clean: Arc<dyn Transport> = Arc::new(net.clone());
    legacy_stub(clean.listen("old-daemon").unwrap());

    let pulled = pull_spans(&clean, "old-daemon", 0).unwrap();
    assert!(pulled.is_none(), "generic error must read as 'tracing unsupported'");
}

/// The same tolerance over real TCP sockets.
#[test]
fn trace_query_unsupported_peer_over_tcp() {
    let transport: Arc<dyn Transport> = Arc::new(TcpTransport::new());
    let listener = transport.listen("127.0.0.1:0").unwrap();
    let address = listener.address();
    legacy_stub(listener);

    let pulled = pull_spans(&transport, &address, 0).unwrap();
    assert!(pulled.is_none(), "generic error must read as 'tracing unsupported'");
}
