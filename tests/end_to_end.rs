//! End-to-end integration tests: full domains (agent + servers + clients)
//! exercising every layer together — PDL catalogue, XDR marshaling,
//! protocol framing, transports, scheduling, failover, and the solvers.

use std::sync::Arc;

use netsolve::core::{CsrMatrix, DataObject, Matrix, Rng64};
use netsolve::net::LinkModel;
use netsolve::server::ExecutionMode;
use netsolve::agent::Policy;
use netsolve::testbed::InProcessDomain;

/// Every problem in the standard catalogue is solvable through a live
/// domain — the dispatch table, the PDL signatures, the marshaling and the
/// numerics all agree.
#[test]
fn every_catalogue_problem_solves_end_to_end() {
    let domain = InProcessDomain::start(&[("h1", 200.0), ("h2", 100.0)]).unwrap();
    let client = domain.client();
    let mut rng = Rng64::new(1);

    let a8 = Matrix::random_diag_dominant(8, &mut rng);
    let spd8 = Matrix::random_spd(8, &mut rng);
    let lap = CsrMatrix::laplacian_2d(3, 3);
    let v8 = vec![1.0f64; 8];
    let v9 = vec![1.0f64; 9];

    let calls: Vec<(&str, Vec<DataObject>)> = vec![
        ("dgesv", vec![a8.clone().into(), v8.clone().into()]),
        ("dgels", vec![a8.clone().into(), v8.clone().into()]),
        ("dposv", vec![spd8.clone().into(), v8.clone().into()]),
        (
            "dgtsv",
            vec![
                vec![-1.0; 7].into(),
                vec![4.0; 8].into(),
                vec![-1.0; 7].into(),
                v8.clone().into(),
            ],
        ),
        ("dgemm", vec![a8.clone().into(), a8.clone().into()]),
        (
            "eig_power",
            vec![spd8.clone().into(), DataObject::Double(1e-8), DataObject::Int(20_000)],
        ),
        (
            "cg",
            vec![lap.clone().into(), v9.clone().into(), DataObject::Double(1e-9), DataObject::Int(2_000)],
        ),
        (
            "jacobi",
            vec![lap.clone().into(), v9.clone().into(), DataObject::Double(1e-9), DataObject::Int(50_000)],
        ),
        (
            "sor",
            vec![
                lap.clone().into(),
                v9.clone().into(),
                DataObject::Double(1.3),
                DataObject::Double(1e-9),
                DataObject::Int(50_000),
            ],
        ),
        ("spmv", vec![lap.clone().into(), v9.clone().into()]),
        ("fft", vec![vec![1.0; 16].into(), vec![0.0; 16].into()]),
        ("ifft", vec![vec![1.0; 16].into(), vec![0.0; 16].into()]),
        (
            "polyfit",
            vec![
                vec![0.0, 1.0, 2.0, 3.0, 4.0].into(),
                vec![1.0, 2.0, 3.0, 4.0, 5.0].into(),
                DataObject::Int(1),
            ],
        ),
        (
            "quad",
            vec![
                "poly3".into(),
                DataObject::Double(0.0),
                DataObject::Double(2.0),
                DataObject::Double(1e-10),
            ],
        ),
        ("dgetri", vec![a8.clone().into()]),
        ("conv", vec![vec![1.0, 2.0, 3.0].into(), vec![1.0, 1.0].into()]),
        (
            "ode_rk4",
            vec![
                "oscillator".into(),
                vec![1.0, 0.0].into(),
                DataObject::Double(0.0),
                DataObject::Double(1.0),
                DataObject::Int(500),
            ],
        ),
        (
            "quad_mc",
            vec![
                "gauss".into(),
                DataObject::Double(-1.0),
                DataObject::Double(1.0),
                DataObject::Int(20_000),
                DataObject::Int(7),
            ],
        ),
        ("vsort", vec![vec![3.0, 1.0, 2.0].into()]),
        ("ddot", vec![v8.clone().into(), v8.clone().into()]),
        ("dnrm2", vec![v8.clone().into()]),
    ];
    let names = client.list_problems().unwrap();
    assert_eq!(calls.len(), names.len(), "test must cover the whole catalogue");
    for (problem, inputs) in calls {
        let outputs = client
            .netsl(problem, &inputs)
            .unwrap_or_else(|e| panic!("{problem} failed end-to-end: {e}"));
        assert!(!outputs.is_empty(), "{problem} returned nothing");
        let spec = client.describe(problem).unwrap();
        spec.check_outputs(&outputs).unwrap();
    }
}

/// Remote answers equal local answers bit-for-bit for deterministic
/// problems: the wire does not perturb data.
#[test]
fn remote_equals_local_exactly() {
    let domain = InProcessDomain::start(&[("h", 100.0)]).unwrap();
    let client = domain.client();
    let mut rng = Rng64::new(5);
    let a = Matrix::random_diag_dominant(20, &mut rng);
    let b: Vec<f64> = (0..20).map(|i| (i as f64).sin()).collect();

    let remote = client
        .netsl("dgesv", &[a.clone().into(), b.clone().into()])
        .unwrap();
    let local = netsolve::solvers::lu::dgesv(&a, &b).unwrap();
    assert_eq!(remote[0].as_vector().unwrap(), local.as_slice());
}

/// A lossy network (2% injected failures per send) plus client retries
/// still completes a batch; failures are visible in attempt counts.
#[test]
fn lossy_network_is_survivable() {
    let link = LinkModel::ideal().with_failure_prob(0.02);
    let mut domain = InProcessDomain::start_with(
        &[("a", 100.0), ("b", 100.0), ("c", 100.0)],
        link,
        Policy::MinimumCompletionTime,
        ExecutionMode::Real,
    )
    .unwrap();
    let client = domain.client();

    let mut ok = 0;
    let total = 40;
    for i in 0..total {
        let v = vec![i as f64; 8];
        match client.netsl("dnrm2", &[v.into()]) {
            Ok(out) => {
                let expect = (8.0f64).sqrt() * i as f64;
                assert!((out[0].as_double().unwrap() - expect).abs() < 1e-9);
                ok += 1;
            }
            Err(e) => {
                // Only infrastructure errors are acceptable here.
                assert!(e.is_retryable(), "unexpected error class: {e}");
            }
        }
    }
    assert!(ok >= total * 8 / 10, "too many losses: {ok}/{total}");
    domain.shutdown();
}

/// The scheduler reacts to synthetic load: with one server emulating slow
/// execution, big work goes to the fast machine.
#[test]
fn synthetic_mode_emulates_speed_ratio() {
    // Synthetic execution: service time = complexity / advertised mflops,
    // so the advertised ratings are real. 50x speed difference.
    let mut domain = InProcessDomain::start_with(
        &[("supercomputer", 5000.0), ("workstation", 100.0)],
        LinkModel::ideal(),
        Policy::MinimumCompletionTime,
        ExecutionMode::Synthetic { mflops: 0.0 }, // per-server value is used
    )
    .unwrap();
    let client = domain.client();
    let spec = client.describe("dgesv").unwrap();
    let inputs: Vec<DataObject> =
        vec![Matrix::identity(100).into(), vec![0.0f64; 100].into()];
    // On the fresh domain nothing has been observed yet, so the ranking is
    // pure arithmetic over the advertised ratings: the 50x faster machine
    // must come first, and the first solve must land on it.
    let ranked = client.query_servers(&spec, &inputs).unwrap();
    assert_eq!(ranked[0].address, "srv0", "fast machine must rank first");
    let (_, report) = client.netsl_timed("dgesv", &inputs).unwrap();
    if report.attempts == 1 {
        assert_eq!(report.server_address, "srv0");
    }
    // Later solves are not pinned to srv0: each completion report teaches
    // the agent's network view real transfer times, and on a starved CPU
    // the measured slowness legitimately re-ranks the domain. The solves
    // themselves must keep succeeding.
    for _ in 0..4 {
        client.netsl_timed("dgesv", &inputs).unwrap();
    }
    domain.shutdown();
}

/// The MATLAB front end, the client library and the solver substrate agree
/// through a full domain.
#[test]
fn script_domain_and_solvers_agree() {
    let domain = InProcessDomain::start(&[("h1", 150.0)]).unwrap();
    let mut interp = netsolve::script::Interpreter::with_client(domain.client());
    interp
        .run(
            "A = [5 1 0; 1 5 1; 0 1 5]\n\
             b = [6 7 6]\n\
             x = netsolve('dgesv', A, b)\n\
             err = norm(A * x - b)",
        )
        .unwrap();
    let err = interp.get("err").unwrap().as_scalar().unwrap();
    assert!(err < 1e-12);
}

/// Concurrent clients hammering one domain stay consistent.
#[test]
fn concurrent_clients_are_isolated() {
    let domain = InProcessDomain::start(&[("h1", 300.0), ("h2", 300.0)]).unwrap();
    let domain = Arc::new(domain);
    let handles: Vec<_> = (0..6)
        .map(|t| {
            let domain = Arc::clone(&domain);
            std::thread::spawn(move || {
                let client = domain.client();
                for i in 0..15 {
                    let k = (t * 100 + i) as f64;
                    let out = client
                        .netsl("ddot", &[vec![k, 1.0].into(), vec![1.0, k].into()])
                        .unwrap();
                    assert_eq!(out[0].as_double().unwrap(), 2.0 * k);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
}

/// A federated pair of agents: a client of agent A transparently solves a
/// problem whose only server registered with agent B.
#[test]
fn federated_agents_share_servers() {
    use netsolve::agent::{AgentCore, AgentDaemon};
    use netsolve::client::NetSolveClient;
    use netsolve::net::{ChannelNetwork, Transport};
    use netsolve::server::{ServerConfig, ServerCore, ServerDaemon};

    let net = ChannelNetwork::new();
    let transport: Arc<dyn Transport> = Arc::new(net.clone());
    let mut agent_b =
        AgentDaemon::start(Arc::clone(&transport), "agent-b", AgentCore::with_defaults()).unwrap();
    let mut agent_a = AgentDaemon::start_federated(
        Arc::clone(&transport),
        "agent-a",
        AgentCore::with_defaults(),
        vec!["agent-b".into()],
    )
    .unwrap();
    let mut server = ServerDaemon::start(
        Arc::clone(&transport),
        "agent-b",
        ServerCore::with_standard_catalogue(),
        ServerConfig::quick("remote-site", "srv-b", 200.0),
    )
    .unwrap();

    // Client talks only to agent A; the work lands on agent B's server.
    let client = NetSolveClient::new(Arc::new(net), "agent-a");
    let (out, report) = client
        .netsl_timed("ddot", &[vec![1.0, 2.0, 3.0].into(), vec![4.0, 5.0, 6.0].into()])
        .unwrap();
    assert_eq!(out[0].as_double().unwrap(), 32.0);
    assert_eq!(report.server_address, "srv-b");

    server.stop();
    agent_a.stop();
    agent_b.stop();
}

/// The operator roster reflects live state (registration, workload,
/// fault marking).
#[test]
fn server_roster_reflects_domain_state() {
    let domain = InProcessDomain::start(&[("hostA", 300.0), ("hostB", 150.0)]).unwrap();
    let client = domain.client();
    let servers = client.list_servers().unwrap();
    assert_eq!(servers.len(), 2);
    assert!(servers.iter().any(|s| s.host == "hostA" && s.mflops == 300.0));
    assert!(servers.iter().all(|s| !s.down));
    assert!(servers.iter().all(|s| s.problems >= 21));

    // Kill hostA's address; after two failed calls the roster marks it down.
    domain.network().set_down("srv0");
    for _ in 0..2 {
        let _ = client.netsl("ddot", &[vec![1.0].into(), vec![1.0].into()]);
    }
    let servers = client.list_servers().unwrap();
    let a = servers.iter().find(|s| s.host == "hostA").unwrap();
    assert!(a.down, "hostA should be marked down in the roster");
}

/// TCP and channel transports produce identical results for the same
/// calls (transport neutrality of the whole stack).
#[test]
fn transport_neutrality() {
    use netsolve::agent::{AgentCore, AgentDaemon};
    use netsolve::client::NetSolveClient;
    use netsolve::net::{TcpTransport, Transport};
    use netsolve::server::{ServerConfig, ServerCore, ServerDaemon};

    // TCP domain.
    let transport: Arc<dyn Transport> = Arc::new(TcpTransport::new());
    let mut agent = AgentDaemon::start(
        Arc::clone(&transport),
        "127.0.0.1:0",
        AgentCore::with_defaults(),
    )
    .unwrap();
    let mut server = ServerDaemon::start(
        Arc::clone(&transport),
        agent.address(),
        ServerCore::with_standard_catalogue(),
        ServerConfig::quick("tcp-host", "127.0.0.1:0", 100.0),
    )
    .unwrap();
    let tcp_client = NetSolveClient::new(Arc::clone(&transport), agent.address());

    // Channel domain.
    let chan_domain = InProcessDomain::start(&[("chan-host", 100.0)]).unwrap();
    let chan_client = chan_domain.client();

    let mut rng = Rng64::new(77);
    let a = Matrix::random_spd(12, &mut rng);
    let b: Vec<f64> = (0..12).map(|i| i as f64 * 0.25).collect();
    let args = [DataObject::Matrix(a), DataObject::Vector(b)];

    let via_tcp = tcp_client.netsl("dposv", &args).unwrap();
    let via_chan = chan_client.netsl("dposv", &args).unwrap();
    assert_eq!(via_tcp, via_chan);

    server.stop();
    agent.stop();
}
