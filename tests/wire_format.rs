//! Golden wire-format tests: the exact byte layout of the protocol is a
//! compatibility contract (a v1 client must interoperate with a v1 agent
//! built from any commit), so key encodings are pinned here byte-for-byte.
//! If one of these fails, either bump `netsolve::proto::frame::VERSION` or
//! revert the encoding change.

use netsolve::core::DataObject;
use netsolve::proto::{frame_bytes, Message, QueryShape};
use netsolve::xdr::{crc32, Encoder};

#[test]
fn ping_frame_is_pinned() {
    let bytes = frame_bytes(&Message::Ping).unwrap();
    // magic "NSRV", version 6 (fleet telemetry: histogram exemplars,
    // gossip digest leg, FleetStatsQuery/Reply), length 4, payload =
    // tag 13, crc
    let mut expect = Vec::new();
    expect.extend_from_slice(&0x4E53_5256u32.to_be_bytes());
    expect.extend_from_slice(&6u32.to_be_bytes());
    expect.extend_from_slice(&4u32.to_be_bytes());
    expect.extend_from_slice(&13u32.to_be_bytes());
    expect.extend_from_slice(&crc32(&13u32.to_be_bytes()).to_be_bytes());
    assert_eq!(bytes, expect);
}

#[test]
fn server_query_payload_is_pinned() {
    let msg = Message::ServerQuery(QueryShape {
        client_host: 7,
        problem: "dgesv".into(),
        n: 512,
        bytes_in: 1000,
        bytes_out: 64,
        trace_id: (11u128 << 64) | 22,
        parent_span: 33,
    });
    let payload = msg.encode();
    let mut expect = Encoder::new();
    expect.put_u32(4); // tag
    expect.put_u64(7);
    expect.put_string("dgesv"); // length 5 + 3 pad
    expect.put_u64(512);
    expect.put_u64(1000);
    expect.put_u64(64);
    // v3 trace context: trace id as two big-endian words, high first,
    // then the parent span id.
    expect.put_u64(11);
    expect.put_u64(22);
    expect.put_u64(33);
    assert_eq!(payload, expect.into_bytes());
}

#[test]
fn xdr_primitives_are_big_endian_and_padded() {
    let mut e = Encoder::new();
    e.put_u32(0x0102_0304);
    e.put_f64(1.0);
    e.put_string("ab");
    let bytes = e.into_bytes();
    assert_eq!(&bytes[0..4], &[1, 2, 3, 4]);
    // IEEE-754 1.0 big-endian
    assert_eq!(&bytes[4..12], &[0x3F, 0xF0, 0, 0, 0, 0, 0, 0]);
    // string: length 2, 'a', 'b', two zero pad bytes
    assert_eq!(&bytes[12..20], &[0, 0, 0, 2, b'a', b'b', 0, 0]);
}

#[test]
fn data_object_tags_are_pinned() {
    // tag values are wire contract: int=0 double=1 vector=2 matrix=3
    // sparse=4 text=5
    for (obj, tag) in [
        (DataObject::Int(0), 0u32),
        (DataObject::Double(0.0), 1),
        (DataObject::Vector(vec![]), 2),
        (DataObject::Matrix(netsolve::core::Matrix::zeros(0, 0)), 3),
        (
            DataObject::Sparse(netsolve::core::CsrMatrix::identity(0)),
            4,
        ),
        (DataObject::Text(String::new()), 5),
    ] {
        let bytes = netsolve::xdr::to_bytes(std::slice::from_ref(&obj));
        // layout: count (u32), tag (u32), ...
        let got = u32::from_be_bytes(bytes[4..8].try_into().unwrap());
        assert_eq!(got, tag, "tag drifted for {obj:?}");
    }
}

#[test]
fn message_tags_are_pinned() {
    use netsolve::proto::ServerDescriptor;
    let cases: Vec<(Message, u32)> = vec![
        (
            Message::RegisterServer(ServerDescriptor {
                server_id: 0,
                host: String::new(),
                address: String::new(),
                mflops: 1.0,
                problems: vec![],
                pdl_source: String::new(),
            }),
            1,
        ),
        (Message::RegisterAck { accepted: true, detail: String::new() }, 2),
        (Message::WorkloadReport { server_id: 0, workload: 0.0 }, 3),
        (Message::ListProblems, 6),
        (Message::Ping, 13),
        (Message::Pong, 14),
        (Message::Error { code: 0, detail: String::new() }, 15),
        (Message::ListServers, 19),
        (Message::FleetStatsQuery, 27),
        (Message::FleetStatsReply { digests: vec![] }, 28),
    ];
    for (msg, tag) in cases {
        assert_eq!(msg.tag(), tag, "{} tag drifted", msg.name());
        let payload = msg.encode();
        let got = u32::from_be_bytes(payload[0..4].try_into().unwrap());
        assert_eq!(got, tag);
    }
}

#[test]
fn error_codes_are_pinned() {
    use netsolve::core::NetSolveError;
    let cases = [
        (NetSolveError::ProblemNotFound(String::new()), 1),
        (NetSolveError::NoServerAvailable(String::new()), 2),
        (NetSolveError::ServerUnreachable(String::new()), 3),
        (NetSolveError::ExecutionFailed(String::new()), 4),
        (NetSolveError::BadArguments(String::new()), 5),
        (NetSolveError::Numerical(String::new()), 9),
        (NetSolveError::Timeout(String::new()), 11),
    ];
    for (e, code) in cases {
        assert_eq!(e.code(), code, "{} code drifted", e.kind());
    }
}

#[test]
fn v5_gossip_payload_is_unchanged_by_v6_digest_leg() {
    // Regression for the v6 additive legs: a GossipSync encoded at v5
    // must be byte-identical whether or not the in-memory message
    // carries stats digests — v5 peers never see the new leg, so mixed
    // fleets keep interoperating.
    let bare = Message::GossipSync { from_agent: "a1".into(), entries: vec![], digests: vec![] };
    let with_digest = Message::GossipSync {
        from_agent: "a1".into(),
        entries: vec![],
        digests: vec![netsolve::obs::StatsDigest {
            origin: "srv".into(),
            component: "server".into(),
            age_secs: 0.5,
            window_secs: 30.0,
            counters: vec![("server.requests".into(), 4.0)],
            gauges: vec![],
            quantiles: vec![],
        }],
    };
    assert_eq!(bare.encode_versioned(5), with_digest.encode_versioned(5));
    // And decoding the v5 bytes yields the digest-free default.
    let decoded = Message::decode_versioned(&with_digest.encode_versioned(5), 5).unwrap();
    assert_eq!(decoded, bare);
}

#[test]
fn crc32_check_value_is_standard() {
    // Interop anchor: the classic CRC-32 check value.
    assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
}
