//! Live federation demo over real TCP sockets: three NetSolve agents
//! gossip their server registries to each other, a client holds the
//! whole agent list, and when the agent the client is pinned to is
//! killed mid-run the client fails over to a survivor — solves keep
//! completing with zero failures.
//!
//! Run with: `cargo run --example federation`

use std::sync::Arc;
use std::time::{Duration, Instant};

use netsolve::agent::{AgentCore, AgentDaemon, Policy};
use netsolve::core::config::{AgentConfig, GossipPolicy};
use netsolve::net::{NetworkView, TcpTransport, Transport};
use netsolve::obs::{MetricsRegistry, Tracer};
use netsolve::server::{ServerConfig, ServerCore, ServerDaemon};

fn main() -> netsolve::core::Result<()> {
    let transport: Arc<dyn Transport> = Arc::new(TcpTransport::new());

    // Three agents on OS-assigned ports, gossiping fast enough to watch.
    let config = AgentConfig {
        gossip: GossipPolicy { interval_secs: 0.1, ..GossipPolicy::default() },
        ..AgentConfig::default()
    };
    let make_core = |cfg: &AgentConfig| {
        AgentCore::new(cfg.clone(), Policy::MinimumCompletionTime, NetworkView::lan_defaults())
    };
    let mut agents: Vec<AgentDaemon> = (0..3)
        .map(|_| {
            AgentDaemon::start_federated(
                Arc::clone(&transport),
                "127.0.0.1:0",
                make_core(&config),
                Vec::new(),
            )
        })
        .collect::<netsolve::core::Result<_>>()?;
    let addrs: Vec<String> = agents.iter().map(|a| a.address().to_string()).collect();
    // Ports are OS-assigned, so the peer lists are wired after binding.
    for (i, agent) in agents.iter().enumerate() {
        let peers = addrs
            .iter()
            .enumerate()
            .filter(|(j, _)| *j != i)
            .map(|(_, a)| a.clone())
            .collect();
        agent.set_peers(peers);
    }
    for (i, a) in addrs.iter().enumerate() {
        println!("agent {i} listening on tcp://{a}");
    }

    // Two servers, registered at DIFFERENT agents: only gossip makes
    // each server visible at the other two.
    let mut servers = Vec::new();
    for (i, mflops) in [300.0, 150.0].into_iter().enumerate() {
        servers.push(ServerDaemon::start(
            Arc::clone(&transport),
            &addrs[i],
            ServerCore::with_standard_catalogue(),
            ServerConfig::quick(&format!("fed-host-{i}"), "127.0.0.1:0", mflops),
        )?);
        println!(
            "server {i} ({mflops} Mflop/s) on tcp://{} registered at agent {i}",
            servers[i].address()
        );
    }

    // Wait until gossip has replicated both servers to every agent.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let converged = agents
            .iter()
            .all(|a| a.core().lock().registry().all_servers().len() == servers.len());
        if converged {
            break;
        }
        assert!(Instant::now() < deadline, "gossip never converged");
        std::thread::sleep(Duration::from_millis(20));
    }
    println!("\ngossip converged: every agent sees all {} servers\n", servers.len());

    // A client holding the whole agent list.
    let metrics = Arc::new(MetricsRegistry::new());
    let client = netsolve::client::NetSolveClient::new_multi(Arc::clone(&transport), &addrs)
        .with_observability(Arc::clone(&metrics), Arc::new(Tracer::new()));

    let solve = |i: usize| -> netsolve::core::Result<()> {
        let x: Vec<f64> = (0..64).map(|k| ((i * 7 + k) % 13) as f64).collect();
        let y: Vec<f64> = (0..64).map(|k| ((i * 3 + k) % 11) as f64).collect();
        let expect: f64 = x.iter().zip(&y).map(|(a, b)| a * b).sum();
        let out = client.netsl("ddot", &[x.into(), y.into()])?;
        assert_eq!(out[0].as_double()?, expect);
        Ok(())
    };

    for i in 0..5 {
        solve(i)?;
    }
    let pinned = client.current_agent();
    println!("5 solves done; client is pinned to agent tcp://{pinned}");

    // Kill the pinned agent mid-run: its listener dies for real.
    let victim = addrs.iter().position(|a| *a == pinned).expect("pin is a known agent");
    agents[victim].stop();
    println!("killed agent {victim} (tcp://{pinned}) — solves continue:\n");

    for i in 5..15 {
        solve(i)?;
    }
    let snap = metrics.snapshot("demo");
    println!("10 more solves completed after the kill");
    println!("  now pinned to     : tcp://{}", client.current_agent());
    println!("  agent failovers   : {}", snap.counter("client.agent_failovers"));
    println!("  calls / ok / fail : {} / {} / {}",
        snap.counter("client.calls"),
        snap.counter("client.calls_ok"),
        snap.counter("client.calls_failed"));
    assert_eq!(snap.counter("client.calls_failed"), 0);
    assert!(snap.counter("client.agent_failovers") >= 1);
    assert_ne!(client.current_agent(), pinned);

    println!("\nfederation: an agent crash costs one failover hop, never a failed solve.");
    for s in &mut servers {
        s.stop();
    }
    for (i, a) in agents.iter_mut().enumerate() {
        if i != victim {
            a.stop();
        }
    }
    Ok(())
}
