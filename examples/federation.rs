//! Agent federation demo: two NetSolve agents, each with its own server
//! pool, peered so a client of either agent can reach every server —
//! the multi-agent domain topology the original NetSolve ran.
//!
//! Run with: `cargo run --example federation`

use std::sync::Arc;

use netsolve::agent::{AgentCore, AgentDaemon};
use netsolve::client::NetSolveClient;
use netsolve::core::DataObject;
use netsolve::net::{ChannelNetwork, Transport};
use netsolve::server::{ServerConfig, ServerCore, ServerDaemon};

fn main() -> netsolve::core::Result<()> {
    let net = ChannelNetwork::new();
    let transport: Arc<dyn Transport> = Arc::new(net.clone());

    // Site A: an agent with one general-purpose server.
    let mut agent_a = AgentDaemon::start_federated(
        Arc::clone(&transport),
        "agent-site-a",
        AgentCore::with_defaults(),
        vec!["agent-site-b".into()],
    )?;
    let mut srv_a = ServerDaemon::start(
        Arc::clone(&transport),
        "agent-site-a",
        ServerCore::with_standard_catalogue(),
        ServerConfig::quick("siteA-ws", "srv-a", 150.0),
    )?;

    // Site B: a second agent with a specialist server that ONLY advertises
    // the quadrature problems (a restricted catalogue, like a site whose
    // license/library only covers one package).
    let mut agent_b = AgentDaemon::start_federated(
        Arc::clone(&transport),
        "agent-site-b",
        AgentCore::with_defaults(),
        vec!["agent-site-a".into()],
    )?;
    let mut quad_registry = netsolve::pdl::ProblemRegistry::new();
    let quad_only: String = netsolve::pdl::standard_catalogue()?
        .iter()
        .filter(|p| p.name.starts_with("quad"))
        .map(netsolve::pdl::render)
        .collect::<Vec<_>>()
        .join("\n");
    quad_registry.register_source(&quad_only)?;
    let mut srv_b = ServerDaemon::start(
        Arc::clone(&transport),
        "agent-site-b",
        ServerCore::new(quad_registry, netsolve::server::ExecutionMode::Real),
        ServerConfig::quick("siteB-quadbox", "srv-b", 400.0),
    )?;

    println!("site A agent: general server (21 problems)");
    println!("site B agent: quadrature specialist\n");

    // A client at site B wants a dense solve — only site A has it.
    let client_b = NetSolveClient::new(Arc::new(net.clone()), "agent-site-b");
    let a = netsolve::core::Matrix::from_rows(2, 2, &[2.0, 1.0, 1.0, 3.0])?;
    let (out, report) = client_b.netsl_timed("dgesv", &[a.into(), vec![3.0, 5.0].into()])?;
    println!(
        "site-B client solved dgesv via federation on {} -> x = {:?}",
        report.server_address,
        out[0].as_vector()?
    );
    assert_eq!(report.server_address, "srv-a");

    // A client at site A integrates — site B's specialist is known to B
    // only, but A's own server also advertises quad; the agent prefers
    // its local answer. Ask for something only B can do by taking srv-a
    // down first.
    net.set_down("srv-a");
    let client_a = NetSolveClient::new(Arc::new(net.clone()), "agent-site-a");
    // two failures mark srv-a down at agent A
    for _ in 0..2 {
        let _ = client_a.netsl(
            "quad",
            &[
                "sin".into(),
                DataObject::Double(0.0),
                DataObject::Double(1.0),
                DataObject::Double(1e-9),
            ],
        );
    }
    let (out, report) = client_a.netsl_timed(
        "quad",
        &[
            "sin".into(),
            DataObject::Double(0.0),
            DataObject::Double(std::f64::consts::PI),
            DataObject::Double(1e-10),
        ],
    )?;
    println!(
        "site-A client (its own server down) integrated sin over [0, π] = {:.9} on {}",
        out[0].as_double()?,
        report.server_address
    );
    assert_eq!(report.server_address, "srv-b");

    println!("\nfederation: every site can reach every capability.");
    srv_a.stop();
    srv_b.stop();
    agent_a.stop();
    agent_b.stop();
    Ok(())
}
