//! Task farming across a heterogeneous server pool — the workload class
//! the paper's introduction motivates: a scientist has a pile of
//! independent solves and a campus full of unevenly-powered machines.
//!
//! Farms 24 dense solves over three servers of very different speeds and
//! shows how the agent's minimum-completion-time policy distributes them.
//!
//! Run with: `cargo run --example task_farm --release`

use netsolve::core::{DataObject, Matrix, Rng64};
use netsolve::testbed::InProcessDomain;
use std::collections::BTreeMap;
use std::time::Instant;

fn main() -> netsolve::core::Result<()> {
    // Three equal workstations: in this in-process demo every "server"
    // really runs on this machine's cores, so equal Mflop/s ratings are the
    // honest configuration — the farm speedup then comes from true
    // parallelism. (Heterogeneous ratings are exercised by the simulator
    // experiments, where service times follow the ratings.)
    let pool = [("ws-1", 200.0), ("ws-2", 200.0), ("ws-3", 200.0)];
    let domain = InProcessDomain::start(&pool)?;
    let client = domain.client();

    // 24 independent systems of mixed sizes.
    let mut rng = Rng64::new(2024);
    let sizes = [300usize, 400, 500];
    let tasks: Vec<Vec<DataObject>> = (0..12)
        .map(|i| {
            let n = sizes[i % sizes.len()];
            let a = Matrix::random_diag_dominant(n, &mut rng);
            let b: Vec<f64> = (0..n).map(|k| (k as f64).cos()).collect();
            vec![a.into(), b.into()]
        })
        .collect();

    println!("farming {} dgesv tasks (n = 300..500) over {} servers...", tasks.len(), pool.len());
    let start = Instant::now();
    let mut placements: BTreeMap<String, usize> = BTreeMap::new();
    // Submit all tasks non-blocking, then wait: classic farm.
    let handles: Vec<_> = tasks
        .into_iter()
        .map(|inputs| client.netsl_nb("dgesv", inputs))
        .collect();
    let mut solved = 0usize;
    for handle in handles {
        let (outputs, report) = handle.wait_timed()?;
        assert_eq!(outputs.len(), 1);
        *placements.entry(report.server_address).or_insert(0) += 1;
        solved += 1;
    }
    let farm_elapsed = start.elapsed();
    println!("all {solved} tasks solved in {farm_elapsed:?}\n");

    println!("placement by server (agent's MCT policy):");
    for (i, (host, mflops)) in pool.iter().enumerate() {
        let addr = format!("srv{i}");
        let count = placements.get(&addr).copied().unwrap_or(0);
        let bar = "#".repeat(count);
        println!("  {host:<10} ({mflops:>5.0} Mflop/s): {count:>2} {bar}");
    }

    // Compare with doing everything locally, sequentially (re-generate the
    // same tasks so the comparison is fair).
    let mut rng = Rng64::new(2024);
    let start = Instant::now();
    for i in 0..12 {
        let n = sizes[i % sizes.len()];
        let a = Matrix::random_diag_dominant(n, &mut rng);
        let b: Vec<f64> = (0..n).map(|k| (k as f64).cos()).collect();
        let _ = netsolve::solvers::lu::dgesv(&a, &b)?;
    }
    let local_elapsed = start.elapsed();
    println!("\nsequential local solve of the same batch: {local_elapsed:?}");
    let ratio = farm_elapsed.as_secs_f64() / local_elapsed.as_secs_f64();
    println!("farm wall-clock / local wall-clock: {ratio:.2}x");
    println!("(on a single-core host the farm cannot beat local compute; the demo's");
    println!("point is the even placement. On a multi-core or multi-machine domain");
    println!("the same code overlaps the solves; see the simulator experiments for");
    println!("heterogeneous-pool balancing.)");
    Ok(())
}
