//! Quickstart: bring up a NetSolve domain in-process, solve a dense linear
//! system remotely, and inspect what the agent predicted vs what happened.
//!
//! Run with: `cargo run --example quickstart`

use netsolve::core::{Matrix, Rng64};
use netsolve::testbed::InProcessDomain;

fn main() -> netsolve::core::Result<()> {
    // One agent + two heterogeneous computational servers, all in this
    // process, talking the real wire protocol over the channel transport.
    let domain = InProcessDomain::start(&[("fast-host", 800.0), ("slow-host", 60.0)])?;
    let client = domain.client();

    println!("domain offers {} problems:", client.list_problems()?.len());
    for name in client.list_problems()? {
        let spec = client.describe(&name)?;
        println!("  {name:<10} — {}", spec.description);
    }

    // Build a well-conditioned 300x300 system with a known solution.
    let n = 300;
    let mut rng = Rng64::new(7);
    let a = Matrix::random_diag_dominant(n, &mut rng);
    let x_true: Vec<f64> = (0..n).map(|i| (i as f64 * 0.1).sin()).collect();
    let b = a.matvec(&x_true)?;

    // netsl: the agent picks the best server, the client ships the data.
    let (outputs, report) = client.netsl_timed("dgesv", &[a.clone().into(), b.into()])?;
    let x = outputs[0].as_vector()?;

    let err = netsolve::core::matrix::vec_max_abs_diff(x, &x_true);
    println!("\nsolved {n}x{n} dgesv remotely:");
    println!("  served by   : {}", report.server_address);
    println!("  predicted   : {}", netsolve::core::units::fmt_secs(report.predicted_secs));
    println!("  measured    : {}", netsolve::core::units::fmt_secs(report.total_secs));
    println!("  compute     : {}", netsolve::core::units::fmt_secs(report.compute_secs));
    println!("  max |x - x*|: {err:.3e}");
    assert!(err < 1e-8, "solution accuracy");

    // Non-blocking flavour: overlap local work with the remote solve.
    let handle = client.netsl_nb(
        "quad",
        vec![
            "gauss".into(),
            netsolve::core::DataObject::Double(-3.0),
            netsolve::core::DataObject::Double(3.0),
            netsolve::core::DataObject::Double(1e-10),
        ],
    );
    let local_work: f64 = (0..1_000_000).map(|i| (i as f64).sqrt()).sum();
    let integral = handle.wait()?[0].as_double()?;
    println!("\noverlapped work while integrating exp(-x^2) over [-3,3]:");
    println!("  remote integral = {integral:.9} (erf-based truth 1.772414712)");
    println!("  local busywork  = {local_work:.3e}");

    Ok(())
}
