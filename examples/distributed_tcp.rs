//! Real-sockets demo: the same agent/server/client stack over TCP on
//! loopback — what a multi-machine deployment looks like, minus the
//! machines. Every byte crosses a real socket through the hand-written
//! XDR marshaling and framing.
//!
//! Run with: `cargo run --example distributed_tcp`

use std::sync::Arc;

use netsolve::agent::{AgentCore, AgentDaemon};
use netsolve::client::NetSolveClient;
use netsolve::core::{Matrix, Rng64};
use netsolve::net::{TcpTransport, Transport};
use netsolve::server::{ServerConfig, ServerCore, ServerDaemon};

fn main() -> netsolve::core::Result<()> {
    let transport: Arc<dyn Transport> = Arc::new(TcpTransport::new());

    // Agent on an OS-assigned port.
    let mut agent = AgentDaemon::start(
        Arc::clone(&transport),
        "127.0.0.1:0",
        AgentCore::with_defaults(),
    )?;
    let agent_addr = agent.address().to_string();
    println!("agent listening on tcp://{agent_addr}");

    // Two servers, each on its own port, registering over TCP.
    let mut servers = Vec::new();
    for (i, mflops) in [300.0, 120.0].into_iter().enumerate() {
        let server = ServerDaemon::start(
            Arc::clone(&transport),
            &agent_addr,
            ServerCore::with_standard_catalogue(),
            ServerConfig::quick(&format!("tcp-host-{i}"), "127.0.0.1:0", mflops),
        )?;
        println!(
            "server {i} ({mflops} Mflop/s) listening on tcp://{} (id {})",
            server.address(),
            server.server_id()
        );
        servers.push(server);
    }

    // A client dials the agent like any remote process would.
    let client = NetSolveClient::new(Arc::clone(&transport), &agent_addr);
    println!("\nproblems on the domain: {:?}\n", client.list_problems()?);

    let mut rng = Rng64::new(11);
    let n = 200;
    let a = Matrix::random_spd(n, &mut rng);
    let x_true: Vec<f64> = (0..n).map(|i| 1.0 / (1.0 + i as f64)).collect();
    let b = a.matvec(&x_true)?;

    let (out, report) = client.netsl_timed("dposv", &[a.into(), b.into()])?;
    let err = netsolve::core::matrix::vec_max_abs_diff(out[0].as_vector()?, &x_true);
    println!("dposv {n}x{n} over TCP:");
    println!("  server    : tcp://{}", report.server_address);
    println!("  total     : {}", netsolve::core::units::fmt_secs(report.total_secs));
    println!("  compute   : {}", netsolve::core::units::fmt_secs(report.compute_secs));
    println!("  max error : {err:.3e}");
    assert!(err < 1e-6);

    for mut s in servers {
        s.stop();
    }
    agent.stop();
    println!("\nclean shutdown.");
    Ok(())
}
