//! The MATLAB-interface demo: NetSolve's signature user experience was an
//! interactive session where `x = netsolve('dgesv', A, b)` transparently
//! ran on the network. This example replays such a session through the
//! miniature MATLAB-like interpreter, then drops into a REPL if stdin is
//! interactive.
//!
//! Run with: `cargo run --example matlab_session`
//! Pipe a script: `echo "norm([3 4])" | cargo run --example matlab_session`

use std::io::{BufRead, IsTerminal, Write};

use netsolve::script::Interpreter;
use netsolve::testbed::InProcessDomain;

const SESSION: &str = "
% --- a NetSolve session, 1996 style -------------------------------
A = [4 1 0; 1 4 1; 0 1 4]
b = [1 2 3]
x = netsolve('dgesv', A, b)          % solved on the network
resid = norm(A * x - b)
disp('residual:')
disp(resid)

% least squares through noisy-ish samples
t = linspace(0, 1, 20)
y = t * 2 + 1
coeffs = netsolve('polyfit', t, y, 1)
disp('fitted line (constant, slope):')
disp(coeffs)

% remote quadrature
area = netsolve('quad', 'runge', -1, 1, 1e-10)
disp('integral of Runge function on [-1,1]:')
disp(area)
";

fn main() -> netsolve::core::Result<()> {
    let domain = InProcessDomain::start(&[("matlab-box", 200.0), ("backend", 400.0)])?;
    let mut interp = Interpreter::with_client(domain.client());

    println!(">> replaying scripted session:\n{SESSION}");
    interp.run(SESSION)?;
    println!("--- session output ---");
    for line in &interp.output {
        println!("{line}");
    }
    interp.output.clear();

    let stdin = std::io::stdin();
    if stdin.is_terminal() {
        println!("\nentering REPL (empty line quits). Try: netsolve('dnrm2', [3 4])");
        loop {
            print!("netsolve> ");
            std::io::stdout().flush().ok();
            let mut line = String::new();
            if stdin.lock().read_line(&mut line).unwrap_or(0) == 0 || line.trim().is_empty() {
                break;
            }
            match interp.run(&line) {
                Ok(_) => {
                    for out in interp.output.drain(..) {
                        println!("{out}");
                    }
                }
                Err(e) => println!("error: {e}"),
            }
        }
    } else {
        // Piped input: execute it as a script.
        let mut script = String::new();
        for line in stdin.lock().lines() {
            script.push_str(&line.unwrap_or_default());
            script.push('\n');
        }
        if !script.trim().is_empty() {
            interp.run(&script)?;
            for out in interp.output.drain(..) {
                println!("{out}");
            }
        }
    }
    Ok(())
}
