//! Fault-tolerance demo: servers die mid-run and the system keeps
//! answering — the agent's ranked candidate list plus client failover and
//! failure reporting in action.
//!
//! Run with: `cargo run --example fault_tolerance`

use netsolve::core::DataObject;
use netsolve::testbed::InProcessDomain;

fn main() -> netsolve::core::Result<()> {
    let domain = InProcessDomain::start(&[("alpha", 500.0), ("beta", 300.0), ("gamma", 100.0)])?;
    let client = domain.client();

    let solve = |tag: &str| -> netsolve::core::Result<()> {
        let (out, report) =
            client.netsl_timed("dnrm2", &[DataObject::Vector(vec![3.0, 4.0])])?;
        println!(
            "{tag}: ||[3,4]|| = {} via {} (attempt {} of the candidate list)",
            out[0].as_double()?,
            report.server_address,
            report.attempts
        );
        Ok(())
    };

    println!("all three servers healthy:");
    solve("  call 1")?;

    println!("\nkilling the fastest server (alpha)...");
    domain.network().set_down("srv0");
    solve("  call 2")?; // fails over transparently
    solve("  call 3")?; // second failure marks alpha down at the agent

    println!("\nafter the agent marked alpha down, calls go straight to beta:");
    solve("  call 4")?;

    println!("\nkilling beta too...");
    domain.network().set_down("srv1");
    solve("  call 5")?;
    solve("  call 6")?;

    println!("\nonly gamma (the slowest box) is left — still answering:");
    solve("  call 7")?;

    println!("\nreviving alpha...");
    domain.network().set_up("srv0");
    // The agent keeps alpha excluded until the fault cooldown expires; in
    // a long-running domain it would probe back in automatically. We just
    // show the domain keeps working either way.
    solve("  call 8")?;

    println!("\nevery call succeeded despite two of three servers dying.");
    Ok(())
}
