//! Capacity planning with the simulator: a researcher asks "how many
//! servers does my department need for its workload?" and answers it with
//! the deterministic discrete-event harness — mixed problem types, a
//! recorded arrival trace, and a server-pool sweep.
//!
//! Run with: `cargo run --example capacity_planning --release`

use netsolve::sim::{run, Arrivals, RequestMix, Scenario, SimServer};

fn main() -> netsolve::core::Result<()> {
    // A morning's recorded arrival pattern: a quiet start, a burst when
    // the lab fills up, then steady work (times in seconds).
    let mut trace: Vec<f64> = Vec::new();
    let mut t = 0.0;
    for i in 0..120 {
        t += if i < 20 {
            2.0 // quiet
        } else if i < 80 {
            0.2 // burst: everyone hits enter after coffee
        } else {
            1.0 // steady
        };
        trace.push(t);
    }

    // The department's blend: mostly medium linear solves, some big
    // spectral jobs, constant small utility calls.
    let mix = RequestMix::mixed(&[
        ("dgesv", &[400, 600], 5.0),
        ("fft", &[16384], 2.0),
        ("dnrm2", &[10_000], 3.0),
    ]);

    println!("sweeping pool size for a 120-request recorded morning:\n");
    println!("{:>8}  {:>12}  {:>16}  {:>16}", "servers", "makespan", "mean turnaround", "p95 turnaround");
    for pool_size in [1usize, 2, 3, 4, 6, 8] {
        let servers = vec![SimServer::new(120.0); pool_size];
        let mut sc = Scenario::default_with(servers, trace.len());
        sc.arrivals = Arrivals::Trace(trace.clone());
        sc.mix = mix.clone();
        // Campus backbone, not 1996 Ethernet: compute, not transfer,
        // should dominate so the pool size is what matters.
        sc.network = netsolve::sim::SimNetwork::uniform(1e-4, 50e6);
        sc.seed = 7;
        let report = run(&sc)?;
        println!(
            "{:>8}  {:>12}  {:>16}  {:>16}",
            pool_size,
            netsolve::core::units::fmt_secs(report.makespan_secs()),
            netsolve::core::units::fmt_secs(report.mean_turnaround_secs()),
            netsolve::core::units::fmt_secs(report.turnaround_percentile(95.0)),
        );
    }

    println!("\nreading the knee of that table tells you where adding another");
    println!("machine stops paying — the same judgement call the 1996 sysadmin");
    println!("made with NetSolve's agent logs, now reproducible from a seed.");
    Ok(())
}
